// Change operations: ADEPT2's "complete set of operations for defining
// changes at a high semantic level".
//
// Each operation encapsulates
//   * structural pre-conditions (checked against the base schema),
//   * the graph transformation itself (applied to a mutable clone),
//   * pinned ids for deterministic re-application (see id_allocator.h),
//   * a target signature used by the semantic overlap analysis.
//
// State-related pre-conditions (may this op be applied to a *running*
// instance in its current marking?) are deliberately *not* here — they are
// the per-operation compliance conditions of Fig. 1 and live in
// compliance/conditions.h, because the same predicate decides both ad-hoc
// changes and type-change propagation.

#ifndef ADEPT_CHANGE_CHANGE_OP_H_
#define ADEPT_CHANGE_CHANGE_OP_H_

#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/json.h"
#include "common/status.h"
#include "change/id_allocator.h"
#include "model/schema.h"
#include "verify/analysis.h"

namespace adept {

enum class ChangeOpKind {
  kSerialInsert = 0,
  kParallelInsert,
  kBranchInsert,
  kDeleteActivity,
  kMoveActivity,
  kInsertSyncEdge,
  kDeleteSyncEdge,
  kAddDataElement,
  kAddDataEdge,
  kDeleteDataEdge,
  kReplaceActivityImpl,
};

const char* ChangeOpKindToString(ChangeOpKind kind);

// Payload describing an activity to be inserted.
struct NewActivitySpec {
  std::string name;
  std::string activity_template;
  RoleId role;
  // Data edges wired to *existing* data elements of the schema.
  struct DataWiring {
    DataId data;
    AccessMode mode = AccessMode::kRead;
    bool optional = false;
  };
  std::vector<DataWiring> data_wirings;
};

class ChangeOp {
 public:
  virtual ~ChangeOp() = default;

  virtual ChangeOpKind kind() const = 0;
  virtual std::string Describe() const = 0;
  virtual std::unique_ptr<ChangeOp> Clone() const = 0;

  // Applies the operation to `schema` (a mutable clone of the base),
  // checking structural pre-conditions. Allocates or re-uses pinned ids via
  // `alloc`.
  virtual Status ApplyTo(ProcessSchema& schema, IdAllocator& alloc) = 0;

  // Nodes of the *base* schema this op depends on or modifies (anchors of
  // inserts, targets of deletes/moves/sync edges). Used by the overlap
  // analysis; newly created nodes are not included.
  virtual std::vector<NodeId> TargetNodes() const = 0;

  // Incremental-verification region hooks (verify/analysis.h). RegionBefore
  // runs against the schema the op is about to modify and records every
  // pre-change node whose block summary the op can invalidate; the default
  // (the op's target nodes) suffices for ops that only touch their targets'
  // immediate blocks. Ops that detach a node from its context (delete,
  // move) also record the node's current edge partners — those stay behind
  // in a block whose identity key does not change. RegionAfter runs after a
  // successful ApplyTo and records created entities (pinned ids).
  virtual void RegionBefore(const SchemaView& schema,
                            ChangeRegion& region) const;
  virtual void RegionAfter(const SchemaView& schema,
                           ChangeRegion& region) const;

  // Renders entity references in signatures. Delta::Signatures() maps ids
  // created by sibling ops to symbolic tokens ("@n2.0" = op 2, slot 0), so
  // two deltas with identical structure but different pinned ids (type
  // change vs ad-hoc bias) produce identical signatures.
  struct SignatureContext {
    std::function<std::string(NodeId)> node = [](NodeId id) {
      return "n" + std::to_string(id.value());
    };
    std::function<std::string(DataId)> data = [](DataId id) {
      return "d" + std::to_string(id.value());
    };
  };

  // Stable signature for equivalence detection between two deltas
  // (kind + parameters + payload, ids of created entities symbolic).
  virtual std::string Signature(const SignatureContext& ctx) const = 0;
  std::string Signature() const { return Signature(SignatureContext{}); }

  virtual JsonValue ToJson() const = 0;

  // Ids created by the op on its first application (empty before).
  const std::vector<uint32_t>& pinned_node_ids() const {
    return pinned_node_ids_;
  }

  // Restores pinned ids from serialized form (used by ChangeOpFromJson).
  void DeserializePins(const JsonValue& json);

 protected:
  // Returns the id for creation slot `slot`, pinning newly allocated ids.
  NodeId PinNode(size_t slot, const ProcessSchema& schema, IdAllocator& alloc);
  EdgeId PinEdge(size_t slot, const ProcessSchema& schema, IdAllocator& alloc);
  DataId PinData(size_t slot, const ProcessSchema& schema, IdAllocator& alloc);

  void SerializePins(JsonValue& json) const;
  void CopyPinsTo(ChangeOp& other) const;

  std::vector<uint32_t> pinned_node_ids_;
  std::vector<uint32_t> pinned_edge_ids_;
  std::vector<uint32_t> pinned_data_ids_;
};

// ---------------------------------------------------------------------------
// Concrete operations
// ---------------------------------------------------------------------------

// Inserts `spec` into the control edge pred -> succ.
class SerialInsertOp final : public ChangeOp {
 public:
  SerialInsertOp(NewActivitySpec spec, NodeId pred, NodeId succ)
      : spec_(std::move(spec)), pred_(pred), succ_(succ) {}

  ChangeOpKind kind() const override { return ChangeOpKind::kSerialInsert; }
  std::string Describe() const override;
  std::unique_ptr<ChangeOp> Clone() const override;
  Status ApplyTo(ProcessSchema& schema, IdAllocator& alloc) override;
  std::vector<NodeId> TargetNodes() const override { return {pred_, succ_}; }
  std::string Signature(const SignatureContext& ctx) const override;
  JsonValue ToJson() const override;

  const NewActivitySpec& spec() const { return spec_; }
  NodeId pred() const { return pred_; }
  NodeId succ() const { return succ_; }
  // Id of the inserted activity (valid after first application).
  NodeId inserted_node() const {
    return pinned_node_ids_.empty() ? NodeId::Invalid()
                                    : NodeId(pinned_node_ids_[0]);
  }

 private:
  NewActivitySpec spec_;
  NodeId pred_;
  NodeId succ_;
};

// Wraps the SESE region [from .. to] into a new AND block and inserts
// `spec` as the second branch (X runs parallel to the region).
class ParallelInsertOp final : public ChangeOp {
 public:
  ParallelInsertOp(NewActivitySpec spec, NodeId from, NodeId to)
      : spec_(std::move(spec)), from_(from), to_(to) {}

  ChangeOpKind kind() const override { return ChangeOpKind::kParallelInsert; }
  std::string Describe() const override;
  std::unique_ptr<ChangeOp> Clone() const override;
  Status ApplyTo(ProcessSchema& schema, IdAllocator& alloc) override;
  std::vector<NodeId> TargetNodes() const override { return {from_, to_}; }
  std::string Signature(const SignatureContext& ctx) const override;
  JsonValue ToJson() const override;

  const NewActivitySpec& spec() const { return spec_; }
  NodeId from() const { return from_; }
  NodeId to() const { return to_; }
  NodeId inserted_node() const {
    return pinned_node_ids_.empty() ? NodeId::Invalid()
                                    : NodeId(pinned_node_ids_[0]);
  }

 private:
  NewActivitySpec spec_;
  NodeId from_;
  NodeId to_;
};

// Adds `spec` as a new branch (selection code `branch_value`) to an
// existing XOR block.
class BranchInsertOp final : public ChangeOp {
 public:
  BranchInsertOp(NewActivitySpec spec, NodeId xor_split, int branch_value)
      : spec_(std::move(spec)),
        split_(xor_split),
        branch_value_(branch_value) {}

  ChangeOpKind kind() const override { return ChangeOpKind::kBranchInsert; }
  std::string Describe() const override;
  std::unique_ptr<ChangeOp> Clone() const override;
  Status ApplyTo(ProcessSchema& schema, IdAllocator& alloc) override;
  std::vector<NodeId> TargetNodes() const override { return {split_}; }
  std::string Signature(const SignatureContext& ctx) const override;
  JsonValue ToJson() const override;

  const NewActivitySpec& spec() const { return spec_; }
  NodeId split() const { return split_; }
  int branch_value() const { return branch_value_; }

 private:
  NewActivitySpec spec_;
  NodeId split_;
  int branch_value_;
};

// Removes an activity, re-linking its control neighbourhood.
class DeleteActivityOp final : public ChangeOp {
 public:
  explicit DeleteActivityOp(NodeId target) : target_(target) {}

  ChangeOpKind kind() const override { return ChangeOpKind::kDeleteActivity; }
  std::string Describe() const override;
  std::unique_ptr<ChangeOp> Clone() const override;
  Status ApplyTo(ProcessSchema& schema, IdAllocator& alloc) override;
  std::vector<NodeId> TargetNodes() const override { return {target_}; }
  // The delete re-links the target's neighbours; their block keeps its
  // identity key, so the neighbours must be dirtied explicitly.
  void RegionBefore(const SchemaView& schema,
                    ChangeRegion& region) const override;
  std::string Signature(const SignatureContext& ctx) const override;
  JsonValue ToJson() const override;

  NodeId target() const { return target_; }

 private:
  NodeId target_;
};

// Moves an existing activity into the control edge new_pred -> new_succ
// ("shift"). The edge is looked up after unlinking the activity, so moving
// within the direct neighbourhood works.
class MoveActivityOp final : public ChangeOp {
 public:
  MoveActivityOp(NodeId target, NodeId new_pred, NodeId new_succ)
      : target_(target), new_pred_(new_pred), new_succ_(new_succ) {}

  ChangeOpKind kind() const override { return ChangeOpKind::kMoveActivity; }
  std::string Describe() const override;
  std::unique_ptr<ChangeOp> Clone() const override;
  Status ApplyTo(ProcessSchema& schema, IdAllocator& alloc) override;
  std::vector<NodeId> TargetNodes() const override {
    return {target_, new_pred_, new_succ_};
  }
  // The source neighbourhood (old pred/succ, sync partners) stays behind in
  // a key-stable block after the move; dirty it from the pre-change schema.
  void RegionBefore(const SchemaView& schema,
                    ChangeRegion& region) const override;
  std::string Signature(const SignatureContext& ctx) const override;
  JsonValue ToJson() const override;

  NodeId target() const { return target_; }
  NodeId new_pred() const { return new_pred_; }
  NodeId new_succ() const { return new_succ_; }

 private:
  NodeId target_;
  NodeId new_pred_;
  NodeId new_succ_;
};

// Adds a synchronization edge from -> to (paper Fig. 1: insertSyncEdge).
class InsertSyncEdgeOp final : public ChangeOp {
 public:
  InsertSyncEdgeOp(NodeId from, NodeId to) : from_(from), to_(to) {}

  ChangeOpKind kind() const override { return ChangeOpKind::kInsertSyncEdge; }
  std::string Describe() const override;
  std::unique_ptr<ChangeOp> Clone() const override;
  Status ApplyTo(ProcessSchema& schema, IdAllocator& alloc) override;
  std::vector<NodeId> TargetNodes() const override { return {from_, to_}; }
  std::string Signature(const SignatureContext& ctx) const override;
  JsonValue ToJson() const override;

  NodeId from() const { return from_; }
  NodeId to() const { return to_; }

 private:
  NodeId from_;
  NodeId to_;
};

// Removes the synchronization edge from -> to.
class DeleteSyncEdgeOp final : public ChangeOp {
 public:
  DeleteSyncEdgeOp(NodeId from, NodeId to) : from_(from), to_(to) {}

  ChangeOpKind kind() const override { return ChangeOpKind::kDeleteSyncEdge; }
  std::string Describe() const override;
  std::unique_ptr<ChangeOp> Clone() const override;
  Status ApplyTo(ProcessSchema& schema, IdAllocator& alloc) override;
  std::vector<NodeId> TargetNodes() const override { return {from_, to_}; }
  std::string Signature(const SignatureContext& ctx) const override;
  JsonValue ToJson() const override;

  NodeId from() const { return from_; }
  NodeId to() const { return to_; }

 private:
  NodeId from_;
  NodeId to_;
};

// Declares a new process data element.
class AddDataElementOp final : public ChangeOp {
 public:
  AddDataElementOp(std::string name, DataType type)
      : name_(std::move(name)), type_(type) {}

  ChangeOpKind kind() const override { return ChangeOpKind::kAddDataElement; }
  std::string Describe() const override;
  std::unique_ptr<ChangeOp> Clone() const override;
  Status ApplyTo(ProcessSchema& schema, IdAllocator& alloc) override;
  std::vector<NodeId> TargetNodes() const override { return {}; }
  std::string Signature(const SignatureContext& ctx) const override;
  JsonValue ToJson() const override;

  DataId created_data() const {
    return pinned_data_ids_.empty() ? DataId::Invalid()
                                    : DataId(pinned_data_ids_[0]);
  }

 private:
  std::string name_;
  DataType type_;
};

// Adds a read/write data edge between an existing node and data element.
class AddDataEdgeOp final : public ChangeOp {
 public:
  AddDataEdgeOp(NodeId node, DataId data, AccessMode mode, bool optional)
      : node_(node), data_(data), mode_(mode), optional_(optional) {}

  ChangeOpKind kind() const override { return ChangeOpKind::kAddDataEdge; }
  std::string Describe() const override;
  std::unique_ptr<ChangeOp> Clone() const override;
  Status ApplyTo(ProcessSchema& schema, IdAllocator& alloc) override;
  std::vector<NodeId> TargetNodes() const override { return {node_}; }
  std::string Signature(const SignatureContext& ctx) const override;
  JsonValue ToJson() const override;

  NodeId node() const { return node_; }
  DataId data() const { return data_; }
  AccessMode mode() const { return mode_; }
  bool optional() const { return optional_; }

 private:
  NodeId node_;
  DataId data_;
  AccessMode mode_;
  bool optional_;
};

// Removes a data edge.
class DeleteDataEdgeOp final : public ChangeOp {
 public:
  DeleteDataEdgeOp(NodeId node, DataId data, AccessMode mode)
      : node_(node), data_(data), mode_(mode) {}

  ChangeOpKind kind() const override { return ChangeOpKind::kDeleteDataEdge; }
  std::string Describe() const override;
  std::unique_ptr<ChangeOp> Clone() const override;
  Status ApplyTo(ProcessSchema& schema, IdAllocator& alloc) override;
  std::vector<NodeId> TargetNodes() const override { return {node_}; }
  std::string Signature(const SignatureContext& ctx) const override;
  JsonValue ToJson() const override;

  NodeId node() const { return node_; }
  DataId data() const { return data_; }
  AccessMode mode() const { return mode_; }

 private:
  NodeId node_;
  DataId data_;
  AccessMode mode_;
};

// Swaps the implementation reference (activity template) of an activity.
class ReplaceActivityImplOp final : public ChangeOp {
 public:
  ReplaceActivityImplOp(NodeId node, std::string new_template)
      : node_(node), new_template_(std::move(new_template)) {}

  ChangeOpKind kind() const override {
    return ChangeOpKind::kReplaceActivityImpl;
  }
  std::string Describe() const override;
  std::unique_ptr<ChangeOp> Clone() const override;
  Status ApplyTo(ProcessSchema& schema, IdAllocator& alloc) override;
  std::vector<NodeId> TargetNodes() const override { return {node_}; }
  std::string Signature(const SignatureContext& ctx) const override;
  JsonValue ToJson() const override;

  NodeId node() const { return node_; }
  const std::string& new_template() const { return new_template_; }

 private:
  NodeId node_;
  std::string new_template_;
};

// Deserializes any operation (inverse of ToJson).
Result<std::unique_ptr<ChangeOp>> ChangeOpFromJson(const JsonValue& json);

}  // namespace adept

#endif  // ADEPT_CHANGE_CHANGE_OP_H_
