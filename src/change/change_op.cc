#include "change/change_op.h"

#include <algorithm>

#include "common/string_util.h"

namespace adept {

namespace {

Node MakeNodeFromSpec(const NewActivitySpec& spec, NodeId id) {
  Node n;
  n.id = id;
  n.type = NodeType::kActivity;
  n.name = spec.name;
  n.activity_template = spec.activity_template;
  n.role = spec.role;
  return n;
}

Status ApplyWirings(ProcessSchema& schema, NodeId node,
                    const NewActivitySpec& spec) {
  for (const auto& w : spec.data_wirings) {
    ADEPT_RETURN_IF_ERROR(schema.AddDataEdge(node, w.data, w.mode, w.optional));
  }
  return Status::OK();
}

// Records a node and all of its current edge partners in the region. Used
// by ops that detach a node: the partners get re-linked to each other, so
// their (key-stable) block must be re-summarized.
void AddNodeAndPartners(const SchemaView& schema, NodeId node,
                        ChangeRegion& region) {
  region.AddNode(node);
  if (schema.FindNode(node) == nullptr) return;
  schema.VisitInEdges(node, [&](const Edge& e) { region.AddNode(e.src); });
  schema.VisitOutEdges(node, [&](const Edge& e) { region.AddNode(e.dst); });
}

JsonValue SpecToJson(const NewActivitySpec& spec) {
  JsonValue j = JsonValue::MakeObject();
  j.Set("name", JsonValue(spec.name));
  if (!spec.activity_template.empty()) {
    j.Set("tmpl", JsonValue(spec.activity_template));
  }
  if (spec.role.valid()) j.Set("role", JsonValue(spec.role.value()));
  JsonValue wirings = JsonValue::MakeArray();
  for (const auto& w : spec.data_wirings) {
    JsonValue wj = JsonValue::MakeObject();
    wj.Set("data", JsonValue(w.data.value()));
    wj.Set("mode", JsonValue(static_cast<int>(w.mode)));
    if (w.optional) wj.Set("optional", JsonValue(true));
    wirings.Append(std::move(wj));
  }
  if (!wirings.as_array().empty()) j.Set("wirings", std::move(wirings));
  return j;
}

NewActivitySpec SpecFromJson(const JsonValue& j) {
  NewActivitySpec spec;
  spec.name = j.Get("name").as_string();
  spec.activity_template = j.Get("tmpl").as_string();
  if (j.Has("role")) {
    spec.role = RoleId(static_cast<uint32_t>(j.Get("role").as_int()));
  }
  for (const JsonValue& wj : j.Get("wirings").as_array()) {
    NewActivitySpec::DataWiring w;
    w.data = DataId(static_cast<uint32_t>(wj.Get("data").as_int()));
    w.mode = static_cast<AccessMode>(wj.Get("mode").as_int());
    w.optional = wj.Get("optional").is_bool() && wj.Get("optional").as_bool();
    spec.data_wirings.push_back(w);
  }
  return spec;
}

std::string SpecSignature(const NewActivitySpec& spec,
                          const ChangeOp::SignatureContext& ctx) {
  std::string sig = spec.name + "/" + spec.activity_template;
  for (const auto& w : spec.data_wirings) {
    sig += "|" + ctx.data(w.data) + ":" +
           std::to_string(static_cast<int>(w.mode));
  }
  return sig;
}

// The single incoming (resp. outgoing) control edge of `node`.
Result<Edge> SingleControlIn(const ProcessSchema& schema, NodeId node) {
  std::vector<Edge> in;
  schema.VisitInEdges(node, [&](const Edge& e) {
    if (e.type == EdgeType::kControl) in.push_back(e);
  });
  if (in.size() != 1) {
    return Status::FailedPrecondition(
        StrFormat("node n%u has %zu incoming control edges, expected 1",
                  node.value(), in.size()));
  }
  return in[0];
}

Result<Edge> SingleControlOut(const ProcessSchema& schema, NodeId node) {
  std::vector<Edge> out;
  schema.VisitOutEdges(node, [&](const Edge& e) {
    if (e.type == EdgeType::kControl) out.push_back(e);
  });
  if (out.size() != 1) {
    return Status::FailedPrecondition(
        StrFormat("node n%u has %zu outgoing control edges, expected 1",
                  node.value(), out.size()));
  }
  return out[0];
}

}  // namespace

const char* ChangeOpKindToString(ChangeOpKind kind) {
  switch (kind) {
    case ChangeOpKind::kSerialInsert:
      return "serialInsert";
    case ChangeOpKind::kParallelInsert:
      return "parallelInsert";
    case ChangeOpKind::kBranchInsert:
      return "branchInsert";
    case ChangeOpKind::kDeleteActivity:
      return "deleteActivity";
    case ChangeOpKind::kMoveActivity:
      return "moveActivity";
    case ChangeOpKind::kInsertSyncEdge:
      return "insertSyncEdge";
    case ChangeOpKind::kDeleteSyncEdge:
      return "deleteSyncEdge";
    case ChangeOpKind::kAddDataElement:
      return "addDataElement";
    case ChangeOpKind::kAddDataEdge:
      return "addDataEdge";
    case ChangeOpKind::kDeleteDataEdge:
      return "deleteDataEdge";
    case ChangeOpKind::kReplaceActivityImpl:
      return "replaceActivityImpl";
  }
  return "?";
}

void ChangeOp::RegionBefore(const SchemaView& schema,
                            ChangeRegion& region) const {
  (void)schema;
  for (NodeId n : TargetNodes()) region.AddNode(n);
}

void ChangeOp::RegionAfter(const SchemaView& schema,
                           ChangeRegion& region) const {
  (void)schema;
  for (uint32_t id : pinned_node_ids_) region.AddNode(NodeId(id));
  // Created data elements can resolve decision references that previously
  // reported "data element missing"; AnalyzeDelta re-checks blocks whose
  // cached decision_refs intersect this set.
  for (uint32_t id : pinned_data_ids_) region.AddData(DataId(id));
}

NodeId ChangeOp::PinNode(size_t slot, const ProcessSchema& schema,
                         IdAllocator& alloc) {
  while (pinned_node_ids_.size() <= slot) {
    pinned_node_ids_.push_back(alloc.NextNode(schema).value());
  }
  return NodeId(pinned_node_ids_[slot]);
}

EdgeId ChangeOp::PinEdge(size_t slot, const ProcessSchema& schema,
                         IdAllocator& alloc) {
  while (pinned_edge_ids_.size() <= slot) {
    pinned_edge_ids_.push_back(alloc.NextEdge(schema).value());
  }
  return EdgeId(pinned_edge_ids_[slot]);
}

DataId ChangeOp::PinData(size_t slot, const ProcessSchema& schema,
                         IdAllocator& alloc) {
  while (pinned_data_ids_.size() <= slot) {
    pinned_data_ids_.push_back(alloc.NextData(schema).value());
  }
  return DataId(pinned_data_ids_[slot]);
}

void ChangeOp::SerializePins(JsonValue& json) const {
  if (pinned_node_ids_.empty() && pinned_edge_ids_.empty() &&
      pinned_data_ids_.empty()) {
    return;
  }
  JsonValue pins = JsonValue::MakeObject();
  auto arr = [](const std::vector<uint32_t>& v) {
    JsonValue a = JsonValue::MakeArray();
    for (uint32_t x : v) a.Append(JsonValue(x));
    return a;
  };
  pins.Set("nodes", arr(pinned_node_ids_));
  pins.Set("edges", arr(pinned_edge_ids_));
  pins.Set("data", arr(pinned_data_ids_));
  json.Set("pins", std::move(pins));
}

void ChangeOp::DeserializePins(const JsonValue& json) {
  if (!json.Has("pins")) return;
  const JsonValue& pins = json.Get("pins");
  for (const JsonValue& v : pins.Get("nodes").as_array()) {
    pinned_node_ids_.push_back(static_cast<uint32_t>(v.as_int()));
  }
  for (const JsonValue& v : pins.Get("edges").as_array()) {
    pinned_edge_ids_.push_back(static_cast<uint32_t>(v.as_int()));
  }
  for (const JsonValue& v : pins.Get("data").as_array()) {
    pinned_data_ids_.push_back(static_cast<uint32_t>(v.as_int()));
  }
}

void ChangeOp::CopyPinsTo(ChangeOp& other) const {
  other.pinned_node_ids_ = pinned_node_ids_;
  other.pinned_edge_ids_ = pinned_edge_ids_;
  other.pinned_data_ids_ = pinned_data_ids_;
}

// --- SerialInsertOp ---------------------------------------------------------

std::string SerialInsertOp::Describe() const {
  return StrFormat("serialInsert('%s', n%u -> n%u)", spec_.name.c_str(),
                   pred_.value(), succ_.value());
}

std::unique_ptr<ChangeOp> SerialInsertOp::Clone() const {
  auto copy = std::make_unique<SerialInsertOp>(spec_, pred_, succ_);
  CopyPinsTo(*copy);
  return copy;
}

Status SerialInsertOp::ApplyTo(ProcessSchema& schema, IdAllocator& alloc) {
  const Edge* edge = schema.FindEdgeBetween(pred_, succ_, EdgeType::kControl);
  if (edge == nullptr) {
    return Status::FailedPrecondition(
        StrFormat("serialInsert: no control edge n%u -> n%u", pred_.value(),
                  succ_.value()));
  }
  int inherited_branch = edge->branch_value;
  EdgeId removed = edge->id;
  ADEPT_RETURN_IF_ERROR(schema.RemoveEdge(removed));

  NodeId x = PinNode(0, schema, alloc);
  ADEPT_RETURN_IF_ERROR(schema.AddNodeWithId(MakeNodeFromSpec(spec_, x)));
  Edge in;
  in.id = PinEdge(0, schema, alloc);
  in.src = pred_;
  in.dst = x;
  in.type = EdgeType::kControl;
  in.branch_value = inherited_branch;
  ADEPT_RETURN_IF_ERROR(schema.AddEdgeWithId(in));
  Edge out;
  out.id = PinEdge(1, schema, alloc);
  out.src = x;
  out.dst = succ_;
  out.type = EdgeType::kControl;
  ADEPT_RETURN_IF_ERROR(schema.AddEdgeWithId(out));
  return ApplyWirings(schema, x, spec_);
}

std::string SerialInsertOp::Signature(const SignatureContext& ctx) const {
  return "serialInsert:" + SpecSignature(spec_, ctx) + "@" + ctx.node(pred_) +
         "->" + ctx.node(succ_);
}

JsonValue SerialInsertOp::ToJson() const {
  JsonValue j = JsonValue::MakeObject();
  j.Set("op", JsonValue(ChangeOpKindToString(kind())));
  j.Set("spec", SpecToJson(spec_));
  j.Set("pred", JsonValue(pred_.value()));
  j.Set("succ", JsonValue(succ_.value()));
  SerializePins(j);
  return j;
}

// --- ParallelInsertOp -------------------------------------------------------

std::string ParallelInsertOp::Describe() const {
  return StrFormat("parallelInsert('%s', region n%u .. n%u)",
                   spec_.name.c_str(), from_.value(), to_.value());
}

std::unique_ptr<ChangeOp> ParallelInsertOp::Clone() const {
  auto copy = std::make_unique<ParallelInsertOp>(spec_, from_, to_);
  CopyPinsTo(*copy);
  return copy;
}

Status ParallelInsertOp::ApplyTo(ProcessSchema& schema, IdAllocator& alloc) {
  const Node* from_node = schema.FindNode(from_);
  const Node* to_node = schema.FindNode(to_);
  if (from_node == nullptr || to_node == nullptr) {
    return Status::FailedPrecondition("parallelInsert: region anchor missing");
  }
  if (from_node->type == NodeType::kStartFlow ||
      to_node->type == NodeType::kEndFlow) {
    return Status::FailedPrecondition(
        "parallelInsert: region may not include start/end flow");
  }
  auto tree = BlockTree::Build(schema);
  if (!tree.ok()) {
    return Status::FailedPrecondition("parallelInsert: " +
                                      tree.status().message());
  }
  auto region = tree->RegionMembers(from_, to_);
  if (!region.ok()) {
    return Status::FailedPrecondition(
        StrFormat("parallelInsert: [n%u .. n%u] is not a SESE region (%s)",
                  from_.value(), to_.value(),
                  region.status().message().c_str()));
  }

  ADEPT_ASSIGN_OR_RETURN(Edge entry, SingleControlIn(schema, from_));
  ADEPT_ASSIGN_OR_RETURN(Edge exit, SingleControlOut(schema, to_));
  ADEPT_RETURN_IF_ERROR(schema.RemoveEdge(entry.id));
  ADEPT_RETURN_IF_ERROR(schema.RemoveEdge(exit.id));

  // Pin/add strictly interleaved: counter-based allocators hand out the
  // next free id, which only advances once the node is actually added.
  NodeId x = PinNode(0, schema, alloc);
  ADEPT_RETURN_IF_ERROR(schema.AddNodeWithId(MakeNodeFromSpec(spec_, x)));
  NodeId split = PinNode(1, schema, alloc);
  Node split_node;
  split_node.id = split;
  split_node.type = NodeType::kAndSplit;
  split_node.name = "and_split";
  ADEPT_RETURN_IF_ERROR(schema.AddNodeWithId(split_node));
  NodeId join = PinNode(2, schema, alloc);
  Node join_node;
  join_node.id = join;
  join_node.type = NodeType::kAndJoin;
  join_node.name = "and_join";
  ADEPT_RETURN_IF_ERROR(schema.AddNodeWithId(join_node));

  auto add_edge = [&](size_t slot, NodeId src, NodeId dst, int branch) {
    Edge e;
    e.id = PinEdge(slot, schema, alloc);
    e.src = src;
    e.dst = dst;
    e.type = EdgeType::kControl;
    e.branch_value = branch;
    return schema.AddEdgeWithId(e);
  };
  ADEPT_RETURN_IF_ERROR(add_edge(0, entry.src, split, entry.branch_value));
  ADEPT_RETURN_IF_ERROR(add_edge(1, split, from_, 0));
  ADEPT_RETURN_IF_ERROR(add_edge(2, to_, join, 0));
  ADEPT_RETURN_IF_ERROR(add_edge(3, join, exit.dst, exit.branch_value));
  ADEPT_RETURN_IF_ERROR(add_edge(4, split, x, 0));
  ADEPT_RETURN_IF_ERROR(add_edge(5, x, join, 0));
  return ApplyWirings(schema, x, spec_);
}

std::string ParallelInsertOp::Signature(const SignatureContext& ctx) const {
  return "parallelInsert:" + SpecSignature(spec_, ctx) + "@" + ctx.node(from_) +
         ".." + ctx.node(to_);
}

JsonValue ParallelInsertOp::ToJson() const {
  JsonValue j = JsonValue::MakeObject();
  j.Set("op", JsonValue(ChangeOpKindToString(kind())));
  j.Set("spec", SpecToJson(spec_));
  j.Set("from", JsonValue(from_.value()));
  j.Set("to", JsonValue(to_.value()));
  SerializePins(j);
  return j;
}

// --- BranchInsertOp ---------------------------------------------------------

std::string BranchInsertOp::Describe() const {
  return StrFormat("branchInsert('%s', split n%u, code %d)",
                   spec_.name.c_str(), split_.value(), branch_value_);
}

std::unique_ptr<ChangeOp> BranchInsertOp::Clone() const {
  auto copy = std::make_unique<BranchInsertOp>(spec_, split_, branch_value_);
  CopyPinsTo(*copy);
  return copy;
}

Status BranchInsertOp::ApplyTo(ProcessSchema& schema, IdAllocator& alloc) {
  const Node* split = schema.FindNode(split_);
  if (split == nullptr || split->type != NodeType::kXorSplit) {
    return Status::FailedPrecondition(
        "branchInsert: target is not an XOR split");
  }
  bool code_in_use = false;
  schema.VisitOutEdges(split_, [&](const Edge& e) {
    if (e.type == EdgeType::kControl && e.branch_value == branch_value_) {
      code_in_use = true;
    }
  });
  if (code_in_use) {
    return Status::FailedPrecondition(
        StrFormat("branchInsert: selection code %d already in use",
                  branch_value_));
  }
  auto tree = BlockTree::Build(schema);
  if (!tree.ok()) {
    return Status::FailedPrecondition("branchInsert: " +
                                      tree.status().message());
  }
  auto join = tree->MatchingExit(split_);
  if (!join.ok()) {
    return Status::FailedPrecondition("branchInsert: split has no join");
  }

  NodeId x = PinNode(0, schema, alloc);
  ADEPT_RETURN_IF_ERROR(schema.AddNodeWithId(MakeNodeFromSpec(spec_, x)));
  Edge in;
  in.id = PinEdge(0, schema, alloc);
  in.src = split_;
  in.dst = x;
  in.type = EdgeType::kControl;
  in.branch_value = branch_value_;
  ADEPT_RETURN_IF_ERROR(schema.AddEdgeWithId(in));
  Edge out;
  out.id = PinEdge(1, schema, alloc);
  out.src = x;
  out.dst = *join;
  out.type = EdgeType::kControl;
  ADEPT_RETURN_IF_ERROR(schema.AddEdgeWithId(out));
  return ApplyWirings(schema, x, spec_);
}

std::string BranchInsertOp::Signature(const SignatureContext& ctx) const {
  return "branchInsert:" + SpecSignature(spec_, ctx) + "@" + ctx.node(split_) +
         "#" + std::to_string(branch_value_);
}

JsonValue BranchInsertOp::ToJson() const {
  JsonValue j = JsonValue::MakeObject();
  j.Set("op", JsonValue(ChangeOpKindToString(kind())));
  j.Set("spec", SpecToJson(spec_));
  j.Set("split", JsonValue(split_.value()));
  j.Set("code", JsonValue(branch_value_));
  SerializePins(j);
  return j;
}

// --- DeleteActivityOp -------------------------------------------------------

std::string DeleteActivityOp::Describe() const {
  return StrFormat("deleteActivity(n%u)", target_.value());
}

std::unique_ptr<ChangeOp> DeleteActivityOp::Clone() const {
  auto copy = std::make_unique<DeleteActivityOp>(target_);
  CopyPinsTo(*copy);
  return copy;
}

Status DeleteActivityOp::ApplyTo(ProcessSchema& schema, IdAllocator& alloc) {
  const Node* target = schema.FindNode(target_);
  if (target == nullptr || target->type != NodeType::kActivity) {
    return Status::FailedPrecondition(
        "deleteActivity: target is not an existing activity");
  }
  ADEPT_ASSIGN_OR_RETURN(Edge in, SingleControlIn(schema, target_));
  ADEPT_ASSIGN_OR_RETURN(Edge out, SingleControlOut(schema, target_));
  ADEPT_RETURN_IF_ERROR(schema.RemoveNode(target_));
  Edge bridge;
  bridge.id = PinEdge(0, schema, alloc);
  bridge.src = in.src;
  bridge.dst = out.dst;
  bridge.type = EdgeType::kControl;
  bridge.branch_value = in.branch_value;
  return schema.AddEdgeWithId(bridge);
}

void DeleteActivityOp::RegionBefore(const SchemaView& schema,
                                    ChangeRegion& region) const {
  AddNodeAndPartners(schema, target_, region);
}

std::string DeleteActivityOp::Signature(const SignatureContext& ctx) const {
  return "deleteActivity:" + ctx.node(target_);
}

JsonValue DeleteActivityOp::ToJson() const {
  JsonValue j = JsonValue::MakeObject();
  j.Set("op", JsonValue(ChangeOpKindToString(kind())));
  j.Set("target", JsonValue(target_.value()));
  SerializePins(j);
  return j;
}

// --- MoveActivityOp ---------------------------------------------------------

std::string MoveActivityOp::Describe() const {
  return StrFormat("moveActivity(n%u into n%u -> n%u)", target_.value(),
                   new_pred_.value(), new_succ_.value());
}

std::unique_ptr<ChangeOp> MoveActivityOp::Clone() const {
  auto copy = std::make_unique<MoveActivityOp>(target_, new_pred_, new_succ_);
  CopyPinsTo(*copy);
  return copy;
}

void MoveActivityOp::RegionBefore(const SchemaView& schema,
                                  ChangeRegion& region) const {
  AddNodeAndPartners(schema, target_, region);
  region.AddNode(new_pred_);
  region.AddNode(new_succ_);
}

Status MoveActivityOp::ApplyTo(ProcessSchema& schema, IdAllocator& alloc) {
  if (target_ == new_pred_ || target_ == new_succ_) {
    return Status::FailedPrecondition(
        "moveActivity: target coincides with an anchor");
  }
  const Node* target = schema.FindNode(target_);
  if (target == nullptr || target->type != NodeType::kActivity) {
    return Status::FailedPrecondition(
        "moveActivity: target is not an existing activity");
  }
  ADEPT_ASSIGN_OR_RETURN(Edge in, SingleControlIn(schema, target_));
  ADEPT_ASSIGN_OR_RETURN(Edge out, SingleControlOut(schema, target_));
  ADEPT_RETURN_IF_ERROR(schema.RemoveEdge(in.id));
  ADEPT_RETURN_IF_ERROR(schema.RemoveEdge(out.id));
  Edge bridge;
  bridge.id = PinEdge(0, schema, alloc);
  bridge.src = in.src;
  bridge.dst = out.dst;
  bridge.type = EdgeType::kControl;
  bridge.branch_value = in.branch_value;
  ADEPT_RETURN_IF_ERROR(schema.AddEdgeWithId(bridge));

  const Edge* slot =
      schema.FindEdgeBetween(new_pred_, new_succ_, EdgeType::kControl);
  if (slot == nullptr) {
    return Status::FailedPrecondition(
        StrFormat("moveActivity: no control edge n%u -> n%u",
                  new_pred_.value(), new_succ_.value()));
  }
  int inherited = slot->branch_value;
  ADEPT_RETURN_IF_ERROR(schema.RemoveEdge(slot->id));
  Edge to_target;
  to_target.id = PinEdge(1, schema, alloc);
  to_target.src = new_pred_;
  to_target.dst = target_;
  to_target.type = EdgeType::kControl;
  to_target.branch_value = inherited;
  ADEPT_RETURN_IF_ERROR(schema.AddEdgeWithId(to_target));
  Edge from_target;
  from_target.id = PinEdge(2, schema, alloc);
  from_target.src = target_;
  from_target.dst = new_succ_;
  from_target.type = EdgeType::kControl;
  return schema.AddEdgeWithId(from_target);
}

std::string MoveActivityOp::Signature(const SignatureContext& ctx) const {
  return "moveActivity:" + ctx.node(target_) + "@" + ctx.node(new_pred_) +
         "->" + ctx.node(new_succ_);
}

JsonValue MoveActivityOp::ToJson() const {
  JsonValue j = JsonValue::MakeObject();
  j.Set("op", JsonValue(ChangeOpKindToString(kind())));
  j.Set("target", JsonValue(target_.value()));
  j.Set("pred", JsonValue(new_pred_.value()));
  j.Set("succ", JsonValue(new_succ_.value()));
  SerializePins(j);
  return j;
}

// --- InsertSyncEdgeOp -------------------------------------------------------

std::string InsertSyncEdgeOp::Describe() const {
  return StrFormat("insertSyncEdge(n%u -> n%u)", from_.value(), to_.value());
}

std::unique_ptr<ChangeOp> InsertSyncEdgeOp::Clone() const {
  auto copy = std::make_unique<InsertSyncEdgeOp>(from_, to_);
  CopyPinsTo(*copy);
  return copy;
}

Status InsertSyncEdgeOp::ApplyTo(ProcessSchema& schema, IdAllocator& alloc) {
  if (from_ == to_) {
    return Status::FailedPrecondition("insertSyncEdge: self edge");
  }
  if (schema.FindNode(from_) == nullptr || schema.FindNode(to_) == nullptr) {
    return Status::FailedPrecondition("insertSyncEdge: endpoint missing");
  }
  if (schema.FindEdgeBetween(from_, to_, EdgeType::kSync) != nullptr) {
    return Status::FailedPrecondition("insertSyncEdge: edge already exists");
  }
  Edge e;
  e.id = PinEdge(0, schema, alloc);
  e.src = from_;
  e.dst = to_;
  e.type = EdgeType::kSync;
  return schema.AddEdgeWithId(e);
}

std::string InsertSyncEdgeOp::Signature(const SignatureContext& ctx) const {
  return "insertSyncEdge:" + ctx.node(from_) + "->" + ctx.node(to_);
}

JsonValue InsertSyncEdgeOp::ToJson() const {
  JsonValue j = JsonValue::MakeObject();
  j.Set("op", JsonValue(ChangeOpKindToString(kind())));
  j.Set("from", JsonValue(from_.value()));
  j.Set("to", JsonValue(to_.value()));
  SerializePins(j);
  return j;
}

// --- DeleteSyncEdgeOp -------------------------------------------------------

std::string DeleteSyncEdgeOp::Describe() const {
  return StrFormat("deleteSyncEdge(n%u -> n%u)", from_.value(), to_.value());
}

std::unique_ptr<ChangeOp> DeleteSyncEdgeOp::Clone() const {
  auto copy = std::make_unique<DeleteSyncEdgeOp>(from_, to_);
  CopyPinsTo(*copy);
  return copy;
}

Status DeleteSyncEdgeOp::ApplyTo(ProcessSchema& schema, IdAllocator&) {
  const Edge* e = schema.FindEdgeBetween(from_, to_, EdgeType::kSync);
  if (e == nullptr) {
    return Status::FailedPrecondition("deleteSyncEdge: no such sync edge");
  }
  return schema.RemoveEdge(e->id);
}

std::string DeleteSyncEdgeOp::Signature(const SignatureContext& ctx) const {
  return "deleteSyncEdge:" + ctx.node(from_) + "->" + ctx.node(to_);
}

JsonValue DeleteSyncEdgeOp::ToJson() const {
  JsonValue j = JsonValue::MakeObject();
  j.Set("op", JsonValue(ChangeOpKindToString(kind())));
  j.Set("from", JsonValue(from_.value()));
  j.Set("to", JsonValue(to_.value()));
  SerializePins(j);
  return j;
}

// --- AddDataElementOp -------------------------------------------------------

std::string AddDataElementOp::Describe() const {
  return StrFormat("addDataElement('%s', %s)", name_.c_str(),
                   DataTypeToString(type_));
}

std::unique_ptr<ChangeOp> AddDataElementOp::Clone() const {
  auto copy = std::make_unique<AddDataElementOp>(name_, type_);
  CopyPinsTo(*copy);
  return copy;
}

Status AddDataElementOp::ApplyTo(ProcessSchema& schema, IdAllocator& alloc) {
  DataElement d;
  d.id = PinData(0, schema, alloc);
  d.name = name_;
  d.type = type_;
  return schema.AddDataWithId(std::move(d));
}

std::string AddDataElementOp::Signature(const SignatureContext&) const {
  return StrFormat("addDataElement:%s/%d", name_.c_str(),
                   static_cast<int>(type_));
}

JsonValue AddDataElementOp::ToJson() const {
  JsonValue j = JsonValue::MakeObject();
  j.Set("op", JsonValue(ChangeOpKindToString(kind())));
  j.Set("name", JsonValue(name_));
  j.Set("type", JsonValue(static_cast<int>(type_)));
  SerializePins(j);
  return j;
}

// --- AddDataEdgeOp ----------------------------------------------------------

std::string AddDataEdgeOp::Describe() const {
  return StrFormat("addDataEdge(n%u %s d%u%s)", node_.value(),
                   AccessModeToString(mode_), data_.value(),
                   optional_ ? ", optional" : "");
}

std::unique_ptr<ChangeOp> AddDataEdgeOp::Clone() const {
  auto copy = std::make_unique<AddDataEdgeOp>(node_, data_, mode_, optional_);
  CopyPinsTo(*copy);
  return copy;
}

Status AddDataEdgeOp::ApplyTo(ProcessSchema& schema, IdAllocator&) {
  Status st = schema.AddDataEdge(node_, data_, mode_, optional_);
  if (st.code() == StatusCode::kInvalidArgument ||
      st.code() == StatusCode::kAlreadyExists) {
    return Status::FailedPrecondition("addDataEdge: " + st.message());
  }
  return st;
}

std::string AddDataEdgeOp::Signature(const SignatureContext& ctx) const {
  return "addDataEdge:" + ctx.node(node_) + "/" +
         std::to_string(static_cast<int>(mode_)) + "/" + ctx.data(data_);
}

JsonValue AddDataEdgeOp::ToJson() const {
  JsonValue j = JsonValue::MakeObject();
  j.Set("op", JsonValue(ChangeOpKindToString(kind())));
  j.Set("node", JsonValue(node_.value()));
  j.Set("data", JsonValue(data_.value()));
  j.Set("mode", JsonValue(static_cast<int>(mode_)));
  if (optional_) j.Set("optional", JsonValue(true));
  SerializePins(j);
  return j;
}

// --- DeleteDataEdgeOp -------------------------------------------------------

std::string DeleteDataEdgeOp::Describe() const {
  return StrFormat("deleteDataEdge(n%u %s d%u)", node_.value(),
                   AccessModeToString(mode_), data_.value());
}

std::unique_ptr<ChangeOp> DeleteDataEdgeOp::Clone() const {
  auto copy = std::make_unique<DeleteDataEdgeOp>(node_, data_, mode_);
  CopyPinsTo(*copy);
  return copy;
}

Status DeleteDataEdgeOp::ApplyTo(ProcessSchema& schema, IdAllocator&) {
  Status st = schema.RemoveDataEdge(node_, data_, mode_);
  if (st.code() == StatusCode::kNotFound) {
    return Status::FailedPrecondition("deleteDataEdge: no such data edge");
  }
  return st;
}

std::string DeleteDataEdgeOp::Signature(const SignatureContext& ctx) const {
  return "deleteDataEdge:" + ctx.node(node_) + "/" +
         std::to_string(static_cast<int>(mode_)) + "/" + ctx.data(data_);
}

JsonValue DeleteDataEdgeOp::ToJson() const {
  JsonValue j = JsonValue::MakeObject();
  j.Set("op", JsonValue(ChangeOpKindToString(kind())));
  j.Set("node", JsonValue(node_.value()));
  j.Set("data", JsonValue(data_.value()));
  j.Set("mode", JsonValue(static_cast<int>(mode_)));
  SerializePins(j);
  return j;
}

// --- ReplaceActivityImplOp --------------------------------------------------

std::string ReplaceActivityImplOp::Describe() const {
  return StrFormat("replaceActivityImpl(n%u, '%s')", node_.value(),
                   new_template_.c_str());
}

std::unique_ptr<ChangeOp> ReplaceActivityImplOp::Clone() const {
  auto copy = std::make_unique<ReplaceActivityImplOp>(node_, new_template_);
  CopyPinsTo(*copy);
  return copy;
}

Status ReplaceActivityImplOp::ApplyTo(ProcessSchema& schema, IdAllocator&) {
  Node* node = schema.MutableNode(node_);
  if (node == nullptr || node->type != NodeType::kActivity) {
    return Status::FailedPrecondition(
        "replaceActivityImpl: target is not an existing activity");
  }
  node->activity_template = new_template_;
  return Status::OK();
}

std::string ReplaceActivityImplOp::Signature(
    const SignatureContext& ctx) const {
  return "replaceActivityImpl:" + ctx.node(node_) + "/" + new_template_;
}

JsonValue ReplaceActivityImplOp::ToJson() const {
  JsonValue j = JsonValue::MakeObject();
  j.Set("op", JsonValue(ChangeOpKindToString(kind())));
  j.Set("node", JsonValue(node_.value()));
  j.Set("tmpl", JsonValue(new_template_));
  SerializePins(j);
  return j;
}

// --- Deserialization --------------------------------------------------------

Result<std::unique_ptr<ChangeOp>> ChangeOpFromJson(const JsonValue& json) {
  if (!json.is_object() || !json.Get("op").is_string()) {
    return Status::Corruption("change op json malformed");
  }
  const std::string& op = json.Get("op").as_string();
  auto node_id = [&](const char* key) {
    return NodeId(static_cast<uint32_t>(json.Get(key).as_int()));
  };
  std::unique_ptr<ChangeOp> out;
  if (op == "serialInsert") {
    out = std::make_unique<SerialInsertOp>(SpecFromJson(json.Get("spec")),
                                           node_id("pred"), node_id("succ"));
  } else if (op == "parallelInsert") {
    out = std::make_unique<ParallelInsertOp>(SpecFromJson(json.Get("spec")),
                                             node_id("from"), node_id("to"));
  } else if (op == "branchInsert") {
    out = std::make_unique<BranchInsertOp>(
        SpecFromJson(json.Get("spec")), node_id("split"),
        static_cast<int>(json.Get("code").as_int()));
  } else if (op == "deleteActivity") {
    out = std::make_unique<DeleteActivityOp>(node_id("target"));
  } else if (op == "moveActivity") {
    out = std::make_unique<MoveActivityOp>(node_id("target"), node_id("pred"),
                                           node_id("succ"));
  } else if (op == "insertSyncEdge") {
    out = std::make_unique<InsertSyncEdgeOp>(node_id("from"), node_id("to"));
  } else if (op == "deleteSyncEdge") {
    out = std::make_unique<DeleteSyncEdgeOp>(node_id("from"), node_id("to"));
  } else if (op == "addDataElement") {
    out = std::make_unique<AddDataElementOp>(
        json.Get("name").as_string(),
        static_cast<DataType>(json.Get("type").as_int()));
  } else if (op == "addDataEdge") {
    out = std::make_unique<AddDataEdgeOp>(
        node_id("node"),
        DataId(static_cast<uint32_t>(json.Get("data").as_int())),
        static_cast<AccessMode>(json.Get("mode").as_int()),
        json.Get("optional").is_bool() && json.Get("optional").as_bool());
  } else if (op == "deleteDataEdge") {
    out = std::make_unique<DeleteDataEdgeOp>(
        node_id("node"),
        DataId(static_cast<uint32_t>(json.Get("data").as_int())),
        static_cast<AccessMode>(json.Get("mode").as_int()));
  } else if (op == "replaceActivityImpl") {
    out = std::make_unique<ReplaceActivityImplOp>(node_id("node"),
                                                  json.Get("tmpl").as_string());
  } else {
    return Status::Corruption("unknown change op kind: " + op);
  }
  out->DeserializePins(json);
  return out;
}

}  // namespace adept
