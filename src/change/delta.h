// Delta: an ordered change transaction (the paper's Delta-T / Delta-I).
//
// A delta bundles change operations that are applied atomically: the base
// schema is cloned, every operation applies its structural transformation
// (with pinned ids, see id_allocator.h), and the candidate is re-verified
// before it becomes visible. A delta that fails any step leaves no trace.
//
// The same Delta object can be re-applied to different bases (S, S', an
// already-biased instance schema) and produces identical entity ids each
// time — required for correct bias rebasing during migration.

#ifndef ADEPT_CHANGE_DELTA_H_
#define ADEPT_CHANGE_DELTA_H_

#include <memory>
#include <string>
#include <vector>

#include "change/change_op.h"
#include "common/json.h"
#include "common/status.h"
#include "model/schema.h"

namespace adept {

class Delta {
 public:
  Delta() = default;
  Delta(Delta&&) = default;
  Delta& operator=(Delta&&) = default;
  Delta(const Delta&) = delete;
  Delta& operator=(const Delta&) = delete;

  Delta Clone() const;

  // Appends an operation; returns a borrowed pointer for inspection.
  ChangeOp* Add(std::unique_ptr<ChangeOp> op);

  const std::vector<std::unique_ptr<ChangeOp>>& ops() const { return ops_; }
  size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }

  // Applies all ops to a clone of `base`, freezes, and verifies.
  //   * kFailedPrecondition: an operation's structural pre-condition failed
  //   * kVerificationFailed: the resulting schema breaks a buildtime rule
  //     (e.g. a deadlock-causing cycle — the paper's structural conflict)
  // `new_version` defaults to base.version() + 1; pass base.version() when
  // deriving an instance-specific (bias) schema.
  // `alloc` defaults to type-level allocation from the schema counters.
  Result<std::shared_ptr<ProcessSchema>> ApplyToSchema(
      const ProcessSchema& base, int new_version = -1,
      IdAllocator* alloc = nullptr);

  // Result of a verified application: the frozen candidate plus the full
  // verification report (warnings included — ApplyToSchema discards them)
  // and the candidate's analysis, to be cached for the next delta on top.
  struct VerifiedSchema {
    std::shared_ptr<ProcessSchema> schema;
    VerificationReport report;
    std::shared_ptr<const SchemaAnalysis> analysis;
  };

  // ApplyToSchema with incremental verification and warning retention.
  // `base_analysis` is the cached analysis of the schema the *tail* of this
  // delta extends; ops with index >= `region_from_op` contribute their
  // change regions and only the blocks they touched are re-verified. Ops
  // before `region_from_op` are a replay prefix that reconstructs the
  // schema `base_analysis` describes (bias re-application), so they add no
  // region. Pass base_analysis == nullptr for a full analysis.
  Result<VerifiedSchema> ApplyVerified(const ProcessSchema& base,
                                       const SchemaAnalysis* base_analysis,
                                       int new_version = -1,
                                       IdAllocator* alloc = nullptr,
                                       size_t region_from_op = 0);

  // Like ApplyToSchema but skips verification (conflict analysis uses this
  // to separate "does not apply" from "applies but is incorrect").
  Result<std::shared_ptr<ProcessSchema>> ApplyRaw(const ProcessSchema& base,
                                                  int new_version = -1,
                                                  IdAllocator* alloc = nullptr);

  // Union of the ops' base-schema target nodes.
  std::vector<NodeId> TargetNodes() const;

  // Op signatures in order (overlap analysis).
  std::vector<std::string> Signatures() const;

  std::string Describe() const;

  JsonValue ToJson() const;
  static Result<Delta> FromJson(const JsonValue& json);

 private:
  std::vector<std::unique_ptr<ChangeOp>> ops_;
};

}  // namespace adept

#endif  // ADEPT_CHANGE_DELTA_H_
