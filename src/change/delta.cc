#include "change/delta.h"

#include <unordered_map>

#include "common/string_util.h"
#include "verify/verifier.h"

namespace adept {

Delta Delta::Clone() const {
  Delta copy;
  for (const auto& op : ops_) copy.ops_.push_back(op->Clone());
  return copy;
}

ChangeOp* Delta::Add(std::unique_ptr<ChangeOp> op) {
  ops_.push_back(std::move(op));
  return ops_.back().get();
}

Result<std::shared_ptr<ProcessSchema>> Delta::ApplyRaw(
    const ProcessSchema& base, int new_version, IdAllocator* alloc) {
  SchemaIdAllocator default_alloc;
  IdAllocator& a = alloc != nullptr ? *alloc : default_alloc;
  std::shared_ptr<ProcessSchema> candidate = base.Clone();
  candidate->set_version(new_version >= 0 ? new_version : base.version() + 1);
  for (const auto& op : ops_) {
    Status st = op->ApplyTo(*candidate, a);
    if (!st.ok()) {
      return Status::FailedPrecondition(op->Describe() + ": " + st.message());
    }
  }
  ADEPT_RETURN_IF_ERROR(candidate->Freeze());
  return candidate;
}

Result<std::shared_ptr<ProcessSchema>> Delta::ApplyToSchema(
    const ProcessSchema& base, int new_version, IdAllocator* alloc) {
  ADEPT_ASSIGN_OR_RETURN(VerifiedSchema verified,
                         ApplyVerified(base, nullptr, new_version, alloc));
  return std::move(verified.schema);
}

Result<Delta::VerifiedSchema> Delta::ApplyVerified(const ProcessSchema& base,
                                                   const SchemaAnalysis* base_analysis,
                                                   int new_version,
                                                   IdAllocator* alloc,
                                                   size_t region_from_op) {
  SchemaIdAllocator default_alloc;
  IdAllocator& a = alloc != nullptr ? *alloc : default_alloc;
  std::shared_ptr<ProcessSchema> candidate = base.Clone();
  candidate->set_version(new_version >= 0 ? new_version : base.version() + 1);

  const bool track_region =
      base_analysis != nullptr && base_analysis->incremental();
  ChangeRegion region;
  for (size_t i = 0; i < ops_.size(); ++i) {
    const ChangeOp& op = *ops_[i];
    // RegionBefore must see the pre-op state: deletes/moves record the
    // target's current neighbours, which the op is about to re-link.
    if (track_region && i >= region_from_op) {
      op.RegionBefore(*candidate, region);
    }
    Status st = ops_[i]->ApplyTo(*candidate, a);
    if (!st.ok()) {
      return Status::FailedPrecondition(op.Describe() + ": " + st.message());
    }
    if (track_region && i >= region_from_op) {
      op.RegionAfter(*candidate, region);
    }
  }
  ADEPT_RETURN_IF_ERROR(candidate->Freeze());

  AnalysisResult analyzed =
      track_region ? AnalyzeDelta(*base_analysis, *candidate, region)
                   : AnalyzeSchema(*candidate);
  if (!analyzed.report.ok()) {
    return Status::VerificationFailed(analyzed.report.FirstError());
  }
  return VerifiedSchema{std::move(candidate), std::move(analyzed.report),
                        std::move(analyzed.analysis)};
}

std::vector<NodeId> Delta::TargetNodes() const {
  std::vector<NodeId> out;
  for (const auto& op : ops_) {
    for (NodeId n : op->TargetNodes()) out.push_back(n);
  }
  return out;
}

std::vector<std::string> Delta::Signatures() const {
  // Ids created by sibling ops are rendered symbolically ("@n<op>.<slot>"),
  // so structurally identical deltas match even when their pinned ids
  // differ (type-level vs bias-range allocation).
  std::unordered_map<uint32_t, std::string> node_tokens;
  std::unordered_map<uint32_t, std::string> data_tokens;
  for (size_t i = 0; i < ops_.size(); ++i) {
    JsonValue json = ops_[i]->ToJson();
    const JsonValue& pins = json.Get("pins");
    const auto& nodes = pins.Get("nodes").as_array();
    for (size_t s = 0; s < nodes.size(); ++s) {
      node_tokens[static_cast<uint32_t>(nodes[s].as_int())] =
          "@n" + std::to_string(i) + "." + std::to_string(s);
    }
    const auto& data = pins.Get("data").as_array();
    for (size_t s = 0; s < data.size(); ++s) {
      data_tokens[static_cast<uint32_t>(data[s].as_int())] =
          "@d" + std::to_string(i) + "." + std::to_string(s);
    }
  }
  ChangeOp::SignatureContext ctx;
  ctx.node = [&](NodeId id) {
    auto it = node_tokens.find(id.value());
    if (it != node_tokens.end()) return it->second;
    return "n" + std::to_string(id.value());
  };
  ctx.data = [&](DataId id) {
    auto it = data_tokens.find(id.value());
    if (it != data_tokens.end()) return it->second;
    return "d" + std::to_string(id.value());
  };
  std::vector<std::string> out;
  out.reserve(ops_.size());
  for (const auto& op : ops_) out.push_back(op->Signature(ctx));
  return out;
}

std::string Delta::Describe() const {
  std::vector<std::string> parts;
  parts.reserve(ops_.size());
  for (const auto& op : ops_) parts.push_back(op->Describe());
  return Join(parts, "; ");
}

JsonValue Delta::ToJson() const {
  JsonValue arr = JsonValue::MakeArray();
  for (const auto& op : ops_) arr.Append(op->ToJson());
  JsonValue j = JsonValue::MakeObject();
  j.Set("ops", std::move(arr));
  return j;
}

Result<Delta> Delta::FromJson(const JsonValue& json) {
  if (!json.is_object() || !json.Get("ops").is_array()) {
    return Status::Corruption("delta json malformed");
  }
  Delta delta;
  for (const JsonValue& oj : json.Get("ops").as_array()) {
    ADEPT_ASSIGN_OR_RETURN(std::unique_ptr<ChangeOp> op, ChangeOpFromJson(oj));
    delta.ops_.push_back(std::move(op));
  }
  return delta;
}

}  // namespace adept
