// Id allocation for change operations.
//
// Change operations pin the entity ids they create on first application and
// reuse them on re-application. This keeps ids stable when the same delta
// is applied to different bases — the crux of correct migration: a biased
// instance's schema is rebased as S' + Delta-I, and the markings/trace of
// bias-created nodes must keep pointing at the same ids.
//
// Type-level changes allocate from the schema's own counters (< kBiasIdBase);
// instance-level (ad-hoc) changes allocate from a reserved high id range so
// later type-level allocations can never collide with pinned bias ids.

#ifndef ADEPT_CHANGE_ID_ALLOCATOR_H_
#define ADEPT_CHANGE_ID_ALLOCATOR_H_

#include <algorithm>

#include "common/ids.h"
#include "model/schema.h"

namespace adept {

// First id of the range reserved for instance-level (bias) entities.
inline constexpr uint32_t kBiasIdBase = 1u << 20;

class IdAllocator {
 public:
  virtual ~IdAllocator() = default;
  virtual NodeId NextNode(const ProcessSchema& schema) = 0;
  virtual EdgeId NextEdge(const ProcessSchema& schema) = 0;
  virtual DataId NextData(const ProcessSchema& schema) = 0;
};

// Type-level allocation: continues the schema's id counters.
class SchemaIdAllocator final : public IdAllocator {
 public:
  NodeId NextNode(const ProcessSchema& schema) override {
    return NodeId(schema.next_node_id());
  }
  EdgeId NextEdge(const ProcessSchema& schema) override {
    return EdgeId(schema.next_edge_id());
  }
  DataId NextData(const ProcessSchema& schema) override {
    return DataId(schema.next_data_id());
  }
};

// Instance-level allocation: ids from the reserved bias range. Stateless —
// it reads the candidate schema's counters, which earlier (pinned)
// applications have already bumped past their ids, so incremental bias
// application and bias re-application both allocate collision-free.
class BiasIdAllocator final : public IdAllocator {
 public:
  NodeId NextNode(const ProcessSchema& schema) override {
    return NodeId(std::max(kBiasIdBase, schema.next_node_id()));
  }
  EdgeId NextEdge(const ProcessSchema& schema) override {
    return EdgeId(std::max(kBiasIdBase, schema.next_edge_id()));
  }
  DataId NextData(const ProcessSchema& schema) override {
    return DataId(std::max(kBiasIdBase, schema.next_data_id()));
  }
};

}  // namespace adept

#endif  // ADEPT_CHANGE_ID_ALLOCATOR_H_
