// BlockTree: the parsed block structure of a WSM net.
//
// ADEPT schemas are block-structured: every AND-/XOR-split has exactly one
// matching join, every loop-start one matching loop-end, and blocks are
// properly nested. The block tree makes this nesting explicit:
//
//   kRoot        the whole process (entry = start-flow, exit = end-flow)
//   kParallel    an AND block   (entry = AndSplit,  exit = AndJoin)
//   kConditional an XOR block   (entry = XorSplit,  exit = XorJoin)
//   kLoop        a loop block   (entry = LoopStart, exit = LoopEnd)
//   kBranch      one branch of a composite; holds the branch's sequence
//
// Branch (and root) blocks carry an ordered list of SequenceItems: a plain
// node, or a nested composite (represented by its entry node + block index).
// Change operations use the tree to answer "is [from..to] a SESE region?",
// "are a and b in different branches of a common parallel block?" (sync-edge
// insertion), and "which nodes belong to this loop body?" (loop-back reset).

#ifndef ADEPT_MODEL_BLOCK_TREE_H_
#define ADEPT_MODEL_BLOCK_TREE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "model/types.h"

namespace adept {

class SchemaView;

class BlockTree {
 public:
  enum class BlockKind { kRoot, kParallel, kConditional, kLoop, kBranch };

  // One item of a branch/root sequence.
  struct SequenceItem {
    NodeId node;              // plain node, or entry node of the composite
    int composite_block = -1; // index of nested composite block; -1 if plain
  };

  struct Block {
    int index = -1;
    int parent = -1;  // -1 for root
    BlockKind kind = BlockKind::kRoot;
    NodeId entry;     // see kind table above; invalid for empty branches
    NodeId exit;
    std::vector<int> children;          // nested blocks, in control order
    std::vector<SequenceItem> sequence; // branch/root blocks only
  };

  // Parses the block structure. Fails with kVerificationFailed on broken
  // nesting (split without matching join, branches meeting different joins,
  // type mismatches, unreachable/duplicated nodes, ...). Sync edges are
  // ignored here; their rules are enforced by the verifier using the tree.
  static Result<BlockTree> Build(const SchemaView& schema);

  const Block& root() const { return blocks_[0]; }
  const Block& block(int index) const { return blocks_[index]; }
  size_t size() const { return blocks_.size(); }

  // Innermost block containing `node`. Composite entry/exit nodes map to the
  // composite block itself; plain members map to their branch/root block.
  Result<int> BlockOfNode(NodeId node) const;

  // Lowest common ancestor block of two blocks.
  int CommonAncestor(int b1, int b2) const;

  // True iff a and b lie in *different* branches of a common parallel (AND)
  // block — the legality condition for a sync edge between them.
  bool InDifferentParallelBranches(NodeId a, NodeId b) const;

  // All nodes transitively contained in `block` (including entry/exit of
  // nested composites; including `block`'s own entry/exit for composites).
  std::vector<NodeId> NodesIn(int block) const;

  // Nodes of the SESE region [from .. to]: both must be items of the same
  // branch/root sequence (a composite counts as one item, addressed by its
  // entry node for `from` and by its entry *or* exit node for `to`), with
  // `from` not after `to`. Returns all nodes of the region in control order.
  Result<std::vector<NodeId>> RegionMembers(NodeId from, NodeId to) const;

  // Matching closer for a composite entry node (AndJoin for AndSplit, ...).
  Result<NodeId> MatchingExit(NodeId entry) const;
  Result<NodeId> MatchingEntry(NodeId exit) const;

  // Innermost loop block containing `node`, -1 if none.
  int InnermostLoop(NodeId node) const;

  // Human-readable dump (tests / monitor).
  std::string DebugString(const SchemaView& schema) const;

 private:
  friend class BlockTreeBuilder;

  void CollectNodes(int block, std::vector<NodeId>& out) const;

  std::vector<Block> blocks_;
  std::unordered_map<NodeId, int> node_block_;
};

}  // namespace adept

#endif  // ADEPT_MODEL_BLOCK_TREE_H_
