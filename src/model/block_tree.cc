#include "model/block_tree.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "common/string_util.h"
#include "model/node.h"
#include "model/schema_view.h"

namespace adept {

namespace {

std::string NodeDesc(const SchemaView& schema, NodeId id) {
  const Node* n = schema.FindNode(id);
  if (n == nullptr) return "<missing>";
  return n->name.empty() ? std::string(NodeTypeToString(n->type)) : n->name;
}

}  // namespace

// Stateful recursive-descent parser for the block structure.
class BlockTreeBuilder {
 public:
  explicit BlockTreeBuilder(const SchemaView& schema) : schema_(schema) {}

  Result<BlockTree> Run() {
    if (!schema_.start_node().valid() || !schema_.end_node().valid()) {
      return Status::VerificationFailed("schema has no start/end node");
    }
    int root = NewBlock(BlockTree::BlockKind::kRoot, -1);
    tree_.blocks_[root].entry = schema_.start_node();
    tree_.blocks_[root].exit = schema_.end_node();
    ADEPT_RETURN_IF_ERROR(
        ParseSequence(root, schema_.start_node(), NodeId::Invalid()));
    const auto& seq = tree_.blocks_[root].sequence;
    if (seq.empty() || seq.back().node != schema_.end_node() ||
        seq.back().composite_block != -1) {
      return Status::VerificationFailed(
          "process does not terminate in the end-flow node");
    }
    if (tree_.node_block_.size() != schema_.node_count()) {
      return Status::VerificationFailed(StrFormat(
          "%zu of %zu nodes are not reachable within the block structure",
          schema_.node_count() - tree_.node_block_.size(),
          schema_.node_count()));
    }
    return std::move(tree_);
  }

 private:
  int NewBlock(BlockTree::BlockKind kind, int parent) {
    BlockTree::Block b;
    b.index = static_cast<int>(tree_.blocks_.size());
    b.parent = parent;
    b.kind = kind;
    if (parent >= 0) tree_.blocks_[parent].children.push_back(b.index);
    tree_.blocks_.push_back(std::move(b));
    return tree_.blocks_.back().index;
  }

  Status AssignNode(NodeId node, int block) {
    if (!tree_.node_block_.emplace(node, block).second) {
      return Status::VerificationFailed(
          "node " + NodeDesc(schema_, node) +
          " is reached twice while parsing the block structure");
    }
    return Status::OK();
  }

  // Unique control successor or error.
  Result<NodeId> Successor(NodeId node) {
    auto succs = schema_.Successors(node, EdgeType::kControl);
    if (succs.size() != 1) {
      return Status::VerificationFailed(StrFormat(
          "node %s has %zu control successors, expected exactly 1",
          NodeDesc(schema_, node).c_str(), succs.size()));
    }
    return succs[0];
  }

  // Parses the sequence starting at `first` into `block` until reaching
  // `stop` (exclusive; invalid id means: until a node without successor,
  // used for the root which ends at the end-flow node).
  Status ParseSequence(int block, NodeId first, NodeId stop) {
    NodeId cur = first;
    size_t guard = 0;
    while (cur != stop) {
      if (++guard > schema_.node_count() + 1) {
        return Status::VerificationFailed(
            "control flow does not terminate (cycle over control edges?)");
      }
      const Node* node = schema_.FindNode(cur);
      if (node == nullptr) {
        return Status::VerificationFailed("dangling control edge target");
      }
      if (IsBlockCloser(node->type)) {
        return Status::VerificationFailed(
            "unmatched block closer " + NodeDesc(schema_, cur));
      }
      if (IsBlockOpener(node->type)) {
        ADEPT_ASSIGN_OR_RETURN(Composite comp, ParseComposite(cur, block));
        tree_.blocks_[block].sequence.push_back(
            BlockTree::SequenceItem{cur, comp.block});
        if (comp.exit == stop) {
          return Status::VerificationFailed(
              "block exit " + NodeDesc(schema_, comp.exit) +
              " coincides with the enclosing sequence boundary");
        }
        if (!stop.valid()) {
          // Root sequence: stop after a node without successors.
          auto succs = schema_.Successors(comp.exit, EdgeType::kControl);
          if (succs.empty()) break;
          if (succs.size() > 1) {
            return Status::VerificationFailed(
                "block exit has multiple control successors");
          }
          cur = succs[0];
        } else {
          ADEPT_ASSIGN_OR_RETURN(cur, Successor(comp.exit));
        }
        continue;
      }
      // Plain node.
      ADEPT_RETURN_IF_ERROR(AssignNode(cur, block));
      tree_.blocks_[block].sequence.push_back(BlockTree::SequenceItem{cur, -1});
      if (!stop.valid()) {
        auto succs = schema_.Successors(cur, EdgeType::kControl);
        if (succs.empty()) break;  // end-flow
        if (succs.size() > 1) {
          return Status::VerificationFailed(
              StrFormat("non-split node %s has %zu control successors",
                        NodeDesc(schema_, cur).c_str(), succs.size()));
        }
        cur = succs[0];
      } else {
        ADEPT_ASSIGN_OR_RETURN(cur, Successor(cur));
      }
    }
    return Status::OK();
  }

  struct Composite {
    int block;
    NodeId exit;
  };

  // Parses the composite block opened by `opener` (already known to be an
  // opener). Creates the composite block and its branch children.
  Result<Composite> ParseComposite(NodeId opener, int parent) {
    const Node* open_node = schema_.FindNode(opener);
    BlockTree::BlockKind kind;
    NodeType closer_type;
    switch (open_node->type) {
      case NodeType::kAndSplit:
        kind = BlockTree::BlockKind::kParallel;
        closer_type = NodeType::kAndJoin;
        break;
      case NodeType::kXorSplit:
        kind = BlockTree::BlockKind::kConditional;
        closer_type = NodeType::kXorJoin;
        break;
      case NodeType::kLoopStart:
        kind = BlockTree::BlockKind::kLoop;
        closer_type = NodeType::kLoopEnd;
        break;
      default:
        return Status::Internal("ParseComposite on non-opener");
    }

    auto branch_heads = schema_.Successors(opener, EdgeType::kControl);
    if (branch_heads.empty()) {
      return Status::VerificationFailed(
          "block opener " + NodeDesc(schema_, opener) + " has no branches");
    }
    if (kind == BlockTree::BlockKind::kLoop && branch_heads.size() != 1) {
      return Status::VerificationFailed(
          "loop start " + NodeDesc(schema_, opener) +
          " must have exactly one body branch");
    }
    if (kind != BlockTree::BlockKind::kLoop && branch_heads.size() < 2) {
      return Status::VerificationFailed(
          "split " + NodeDesc(schema_, opener) + " needs >= 2 branches");
    }

    // Locate the matching closer along every branch; all must agree.
    NodeId closer;
    for (NodeId head : branch_heads) {
      ADEPT_ASSIGN_OR_RETURN(NodeId c, WalkToCloser(head));
      if (!closer.valid()) {
        closer = c;
      } else if (closer != c) {
        return Status::VerificationFailed(
            "branches of " + NodeDesc(schema_, opener) +
            " meet different joins (" + NodeDesc(schema_, closer) + " vs " +
            NodeDesc(schema_, c) + ")");
      }
    }
    const Node* close_node = schema_.FindNode(closer);
    if (close_node == nullptr || close_node->type != closer_type) {
      return Status::VerificationFailed(
          "block opened by " + NodeDesc(schema_, opener) +
          " is closed by incompatible node " + NodeDesc(schema_, closer));
    }
    if (kind == BlockTree::BlockKind::kLoop) {
      // The loop edge must connect exactly this closer back to the opener.
      auto loop_preds = schema_.Predecessors(opener, EdgeType::kLoop);
      if (loop_preds.size() != 1 || loop_preds[0] != closer) {
        return Status::VerificationFailed(
            "loop block " + NodeDesc(schema_, opener) +
            " lacks a matching loop edge from its loop end");
      }
    }

    int comp = NewBlock(kind, parent);
    tree_.blocks_[comp].entry = opener;
    tree_.blocks_[comp].exit = closer;
    ADEPT_RETURN_IF_ERROR(AssignNode(opener, comp));
    ADEPT_RETURN_IF_ERROR(AssignNode(closer, comp));

    for (NodeId head : branch_heads) {
      int branch = NewBlock(BlockTree::BlockKind::kBranch, comp);
      tree_.blocks_[branch].entry = (head == closer) ? NodeId::Invalid() : head;
      ADEPT_RETURN_IF_ERROR(ParseSequence(branch, head, closer));
      const auto& seq = tree_.blocks_[branch].sequence;
      if (!seq.empty()) {
        const auto& last = seq.back();
        tree_.blocks_[branch].exit =
            last.composite_block >= 0
                ? tree_.blocks_[last.composite_block].exit
                : last.node;
      }
    }
    return Composite{comp, closer};
  }

  // Follows control successors from `from`, counting block nesting, until
  // the closer that balances depth 0 is found.
  Result<NodeId> WalkToCloser(NodeId from) {
    NodeId cur = from;
    int depth = 0;
    size_t guard = 0;
    while (true) {
      if (++guard > schema_.node_count() + 1) {
        return Status::VerificationFailed(
            "no matching join found (unbalanced block nesting)");
      }
      const Node* node = schema_.FindNode(cur);
      if (node == nullptr) {
        return Status::VerificationFailed("dangling control edge target");
      }
      if (IsBlockCloser(node->type)) {
        if (depth == 0) return cur;
        --depth;
      } else if (IsBlockOpener(node->type)) {
        ++depth;
      }
      auto succs = schema_.Successors(cur, EdgeType::kControl);
      if (succs.empty()) {
        return Status::VerificationFailed(
            "branch starting at " + NodeDesc(schema_, from) +
            " runs into a dead end before reaching a join");
      }
      cur = succs[0];
    }
  }

  const SchemaView& schema_;
  BlockTree tree_;
};

Result<BlockTree> BlockTree::Build(const SchemaView& schema) {
  return BlockTreeBuilder(schema).Run();
}

Result<int> BlockTree::BlockOfNode(NodeId node) const {
  auto it = node_block_.find(node);
  if (it == node_block_.end()) {
    return Status::NotFound("node not covered by block tree");
  }
  return it->second;
}

int BlockTree::CommonAncestor(int b1, int b2) const {
  std::unordered_set<int> ancestors;
  for (int b = b1; b >= 0; b = blocks_[b].parent) ancestors.insert(b);
  for (int b = b2; b >= 0; b = blocks_[b].parent) {
    if (ancestors.count(b)) return b;
  }
  return 0;
}

bool BlockTree::InDifferentParallelBranches(NodeId a, NodeId b) const {
  auto ba = BlockOfNode(a);
  auto bb = BlockOfNode(b);
  if (!ba.ok() || !bb.ok()) return false;
  int lca = CommonAncestor(*ba, *bb);
  if (blocks_[lca].kind != BlockKind::kParallel) return false;
  // Climb from each block to the child of lca on its path. If a node *is*
  // the split/join itself its path child does not exist -> not in a branch.
  auto child_towards = [&](int from) {
    int prev = -1;
    for (int b = from; b >= 0; b = blocks_[b].parent) {
      if (b == lca) return prev;
      prev = b;
    }
    return -1;
  };
  int ca = child_towards(*ba);
  int cb = child_towards(*bb);
  return ca >= 0 && cb >= 0 && ca != cb;
}

void BlockTree::CollectNodes(int block, std::vector<NodeId>& out) const {
  const Block& b = blocks_[block];
  if (b.kind == BlockKind::kBranch || b.kind == BlockKind::kRoot) {
    for (const SequenceItem& item : b.sequence) {
      if (item.composite_block >= 0) {
        CollectNodes(item.composite_block, out);
      } else {
        out.push_back(item.node);
      }
    }
  } else {
    out.push_back(b.entry);
    for (int child : b.children) CollectNodes(child, out);
    out.push_back(b.exit);
  }
}

std::vector<NodeId> BlockTree::NodesIn(int block) const {
  std::vector<NodeId> out;
  CollectNodes(block, out);
  return out;
}

Result<std::vector<NodeId>> BlockTree::RegionMembers(NodeId from,
                                                     NodeId to) const {
  ADEPT_ASSIGN_OR_RETURN(int bf, BlockOfNode(from));
  // Map composite blocks to the sequence that contains them as an item.
  auto owning_sequence = [&](int b, NodeId node) -> Result<int> {
    const Block& blk = blocks_[b];
    if (blk.kind == BlockKind::kBranch || blk.kind == BlockKind::kRoot) {
      return b;
    }
    // `node` is the entry or exit of composite `b`; the sequence owning the
    // composite is its parent branch.
    (void)node;
    if (blk.parent < 0) return Status::Internal("composite without parent");
    return blk.parent;
  };
  ADEPT_ASSIGN_OR_RETURN(int seq_f, owning_sequence(bf, from));
  ADEPT_ASSIGN_OR_RETURN(int bt, BlockOfNode(to));
  ADEPT_ASSIGN_OR_RETURN(int seq_t, owning_sequence(bt, to));
  if (seq_f != seq_t) {
    return Status::FailedPrecondition(
        "region endpoints are not items of the same sequence block");
  }
  const Block& seq = blocks_[seq_f];
  int idx_from = -1;
  int idx_to = -1;
  for (size_t i = 0; i < seq.sequence.size(); ++i) {
    const SequenceItem& item = seq.sequence[i];
    NodeId item_exit = item.composite_block >= 0
                           ? blocks_[item.composite_block].exit
                           : item.node;
    if (item.node == from && idx_from < 0) idx_from = static_cast<int>(i);
    if ((item.node == to || item_exit == to) && idx_to < 0) {
      idx_to = static_cast<int>(i);
    }
  }
  if (idx_from < 0 || idx_to < 0 || idx_from > idx_to) {
    return Status::FailedPrecondition(
        "endpoints do not delimit a forward region of the sequence");
  }
  std::vector<NodeId> out;
  for (int i = idx_from; i <= idx_to; ++i) {
    const SequenceItem& item = seq.sequence[i];
    if (item.composite_block >= 0) {
      CollectNodes(item.composite_block, out);
    } else {
      out.push_back(item.node);
    }
  }
  return out;
}

Result<NodeId> BlockTree::MatchingExit(NodeId entry) const {
  ADEPT_ASSIGN_OR_RETURN(int b, BlockOfNode(entry));
  if (blocks_[b].kind == BlockKind::kBranch ||
      blocks_[b].kind == BlockKind::kRoot || blocks_[b].entry != entry) {
    return Status::InvalidArgument("node is not a composite block entry");
  }
  return blocks_[b].exit;
}

Result<NodeId> BlockTree::MatchingEntry(NodeId exit) const {
  ADEPT_ASSIGN_OR_RETURN(int b, BlockOfNode(exit));
  if (blocks_[b].kind == BlockKind::kBranch ||
      blocks_[b].kind == BlockKind::kRoot || blocks_[b].exit != exit) {
    return Status::InvalidArgument("node is not a composite block exit");
  }
  return blocks_[b].entry;
}

int BlockTree::InnermostLoop(NodeId node) const {
  auto b = BlockOfNode(node);
  if (!b.ok()) return -1;
  for (int cur = *b; cur >= 0; cur = blocks_[cur].parent) {
    if (blocks_[cur].kind == BlockKind::kLoop) return cur;
  }
  return -1;
}

std::string BlockTree::DebugString(const SchemaView& schema) const {
  std::ostringstream os;
  std::function<void(int, int)> dump = [&](int block, int indent) {
    const Block& b = blocks_[block];
    os << std::string(static_cast<size_t>(indent) * 2, ' ');
    switch (b.kind) {
      case BlockKind::kRoot:
        os << "root";
        break;
      case BlockKind::kParallel:
        os << "AND[" << NodeDesc(schema, b.entry) << ".."
           << NodeDesc(schema, b.exit) << "]";
        break;
      case BlockKind::kConditional:
        os << "XOR[" << NodeDesc(schema, b.entry) << ".."
           << NodeDesc(schema, b.exit) << "]";
        break;
      case BlockKind::kLoop:
        os << "LOOP[" << NodeDesc(schema, b.entry) << ".."
           << NodeDesc(schema, b.exit) << "]";
        break;
      case BlockKind::kBranch:
        os << "branch";
        break;
    }
    if (b.kind == BlockKind::kBranch || b.kind == BlockKind::kRoot) {
      os << ":";
      for (const SequenceItem& item : b.sequence) {
        if (item.composite_block >= 0) {
          os << " <block#" << item.composite_block << ">";
        } else {
          os << " " << NodeDesc(schema, item.node);
        }
      }
    }
    os << "\n";
    for (int child : b.children) dump(child, indent + 1);
  };
  dump(0, 0);
  return os.str();
}

}  // namespace adept
