// SchemaView: read interface over a process schema.
//
// The runtime, verifier, and compliance checker operate on this interface
// so they work identically on (a) a materialized ProcessSchema and (b) a
// storage overlay that resolves a biased instance's execution schema as
// "original schema + substitution block" without materializing it (paper
// Fig. 2). Keeping the interface purely read-only also documents that an
// execution schema is immutable while an instance runs; changes always go
// through the change framework.

#ifndef ADEPT_MODEL_SCHEMA_VIEW_H_
#define ADEPT_MODEL_SCHEMA_VIEW_H_

#include <functional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "model/node.h"
#include "model/types.h"

namespace adept {

class SchemaView {
 public:
  virtual ~SchemaView() = default;

  // Process type name (shared by all versions of the type).
  virtual const std::string& type_name() const = 0;
  // Version number within the type (1-based; ad-hoc biased instance schemas
  // keep the version of the schema they deviate from).
  virtual int version() const = 0;

  virtual NodeId start_node() const = 0;
  virtual NodeId end_node() const = 0;

  // Numbers of live entities.
  virtual size_t node_count() const = 0;
  virtual size_t edge_count() const = 0;
  virtual size_t data_count() const = 0;

  // Lookup; returns nullptr when the id is unknown or deleted. The pointer
  // is valid as long as the view (and its backing storage) is alive.
  virtual const Node* FindNode(NodeId id) const = 0;
  virtual const Edge* FindEdge(EdgeId id) const = 0;
  virtual const DataElement* FindData(DataId id) const = 0;

  // Enumeration (stable order: ascending id).
  virtual void VisitNodes(const std::function<void(const Node&)>& fn) const = 0;
  virtual void VisitEdges(const std::function<void(const Edge&)>& fn) const = 0;
  virtual void VisitData(
      const std::function<void(const DataElement&)>& fn) const = 0;

  // Adjacency (stable order: ascending edge id).
  virtual void VisitOutEdges(
      NodeId node, const std::function<void(const Edge&)>& fn) const = 0;
  virtual void VisitInEdges(
      NodeId node, const std::function<void(const Edge&)>& fn) const = 0;
  virtual void VisitDataEdges(
      NodeId node, const std::function<void(const DataEdge&)>& fn) const = 0;

  // --- Convenience helpers built on the virtual core -----------------------

  std::vector<NodeId> NodeIds() const;
  std::vector<EdgeId> EdgeIds() const;
  std::vector<DataId> DataIds() const;

  // Successors/predecessors over edges of `type`.
  std::vector<NodeId> Successors(NodeId node, EdgeType type) const;
  std::vector<NodeId> Predecessors(NodeId node, EdgeType type) const;

  // Single control successor/predecessor, or invalid id if none/ambiguous.
  NodeId ControlSuccessor(NodeId node) const;
  NodeId ControlPredecessor(NodeId node) const;

  // Finds the (first) edge of `type` from src to dst; nullptr if absent.
  const Edge* FindEdgeBetween(NodeId src, NodeId dst, EdgeType type) const;

  // Finds a node by (unique) name; invalid id if absent. Linear scan —
  // intended for tests/examples, not hot paths.
  NodeId FindNodeByName(const std::string& name) const;
  DataId FindDataByName(const std::string& name) const;

  // All data edges of `node` with the given mode.
  std::vector<DataEdge> DataEdgesOf(NodeId node, AccessMode mode) const;

  // True if `b` is reachable from `a` via control edges only (loop edges
  // excluded). BFS; O(V+E).
  bool ReachableByControl(NodeId a, NodeId b) const;

  // Topological order of all nodes over control edges (loop edges ignored).
  // Well-formed schemas are acyclic in this projection.
  std::vector<NodeId> TopologicalOrder() const;
};

}  // namespace adept

#endif  // ADEPT_MODEL_SCHEMA_VIEW_H_
