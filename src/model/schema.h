// ProcessSchema: the concrete, owning representation of a WSM net.
//
// Lifecycle: a schema is built (or cloned) in *mutable* state, populated via
// the Add*/Remove* primitives, then Freeze()d. Freezing builds adjacency
// indexes, locates the unique start/end nodes, computes topological ranks,
// and attempts to parse the block structure. After Freeze() the schema is
// immutable and may be shared (shared_ptr<const ProcessSchema>) between the
// repository, instances, and overlay views.
//
// Node/edge/data ids are *stable across versions*: Clone() preserves ids and
// id counters, deleted ids are never reused. This is what lets the
// compliance checker and the storage overlay correlate entities between a
// schema version S, its successor S', and instance-specific schemas.

#ifndef ADEPT_MODEL_SCHEMA_H_
#define ADEPT_MODEL_SCHEMA_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "model/block_tree.h"
#include "model/node.h"
#include "model/schema_view.h"
#include "model/types.h"

namespace adept {

class ProcessSchema final : public SchemaView {
 public:
  ProcessSchema(std::string type_name, int version);

  ProcessSchema(const ProcessSchema&) = delete;
  ProcessSchema& operator=(const ProcessSchema&) = delete;

  // --- Mutation API (only legal while !frozen()) ---------------------------

  // Adds a node; `node.id` is assigned by the schema and returned.
  Result<NodeId> AddNode(Node node);
  // Adds a node under a caller-chosen id (deserialization, overlays).
  // The id must be unused; counters advance past it.
  Status AddNodeWithId(Node node);

  Result<EdgeId> AddEdge(NodeId src, NodeId dst, EdgeType type,
                         int branch_value = 0);
  Status AddEdgeWithId(Edge edge);

  Result<DataId> AddData(std::string name, DataType type);
  Status AddDataWithId(DataElement element);

  Status AddDataEdge(NodeId node, DataId data, AccessMode mode,
                     bool optional = false);

  // Removes a node together with all incident control/sync/loop edges and
  // data edges. The caller (change framework) is responsible for re-linking
  // the graph.
  Status RemoveNode(NodeId id);
  Status RemoveEdge(EdgeId id);
  Status RemoveData(DataId id);
  Status RemoveDataEdge(NodeId node, DataId data, AccessMode mode);

  // Mutable access to a live node/edge (attribute edits); nullptr if absent.
  Node* MutableNode(NodeId id);
  Edge* MutableEdge(EdgeId id);

  void set_version(int version) { version_ = version; }

  // --- Freezing -------------------------------------------------------------

  // Builds indexes and switches to immutable state. Fails (kVerificationFailed)
  // only on malformed shapes that make indexes meaningless: dangling edge
  // endpoints, missing/duplicate start or end node. Deeper properties
  // (block nesting, sync-edge rules, data flow) are the verifier's job; a
  // frozen schema may still be rejected by the verifier.
  Status Freeze();
  bool frozen() const { return frozen_; }

  // Deep copy in mutable state (ids and counters preserved).
  std::shared_ptr<ProcessSchema> Clone() const;

  // --- SchemaView -----------------------------------------------------------

  const std::string& type_name() const override { return type_name_; }
  int version() const override { return version_; }
  // Frozen schemas return the cached unique start/end; mutable schemas scan
  // (change operations consult the block structure mid-transformation).
  NodeId start_node() const override;
  NodeId end_node() const override;
  size_t node_count() const override { return nodes_.size(); }
  size_t edge_count() const override { return edges_.size(); }
  size_t data_count() const override { return data_.size(); }
  const Node* FindNode(NodeId id) const override;
  const Edge* FindEdge(EdgeId id) const override;
  const DataElement* FindData(DataId id) const override;
  void VisitNodes(const std::function<void(const Node&)>& fn) const override;
  void VisitEdges(const std::function<void(const Edge&)>& fn) const override;
  void VisitData(
      const std::function<void(const DataElement&)>& fn) const override;
  void VisitOutEdges(
      NodeId node, const std::function<void(const Edge&)>& fn) const override;
  void VisitInEdges(
      NodeId node, const std::function<void(const Edge&)>& fn) const override;
  void VisitDataEdges(NodeId node,
                      const std::function<void(const DataEdge&)>& fn)
      const override;

  // --- Frozen-only structural services ---------------------------------------

  // Position of `node` in the control-edge topological order; kNotFound for
  // unknown nodes, kFailedPrecondition if the control graph was cyclic.
  Result<int> TopoRank(NodeId node) const;
  bool topo_valid() const { return topo_valid_; }

  // Parsed block structure. kVerificationFailed if parsing failed at
  // Freeze() (malformed nesting); the stored failure message is returned.
  Result<const BlockTree*> block_tree() const;

  // All data edges (in insertion order).
  const std::vector<DataEdge>& data_edges() const { return data_edges_; }

  // Approximate heap footprint in bytes (used by the Fig. 2 storage bench).
  size_t MemoryFootprint() const;

  // Id counters (serialization support).
  uint32_t next_node_id() const { return next_node_id_; }
  uint32_t next_edge_id() const { return next_edge_id_; }
  uint32_t next_data_id() const { return next_data_id_; }
  void BumpCounters(uint32_t node, uint32_t edge, uint32_t data);

 private:
  Status CheckMutable() const;

  std::string type_name_;
  int version_;
  bool frozen_ = false;

  // Ordered maps keyed by id value: id spaces are sparse (instance-level
  // changes allocate from a reserved high range, deletions leave holes), so
  // dense vectors would waste slots; iteration order stays ascending.
  std::map<uint32_t, Node> nodes_;
  std::map<uint32_t, Edge> edges_;
  std::map<uint32_t, DataElement> data_;
  std::vector<DataEdge> data_edges_;
  uint32_t next_node_id_ = 0;
  uint32_t next_edge_id_ = 0;
  uint32_t next_data_id_ = 0;

  // Built by Freeze().
  NodeId start_;
  NodeId end_;
  std::unordered_map<uint32_t, std::vector<EdgeId>> out_edges_;  // by node id
  std::unordered_map<uint32_t, std::vector<EdgeId>> in_edges_;   // by node id
  std::unordered_map<uint32_t, std::vector<size_t>> node_data_edges_;
  std::unordered_map<uint32_t, int> topo_rank_;
  bool topo_valid_ = false;
  std::optional<BlockTree> block_tree_;
  std::string block_tree_error_;
};

}  // namespace adept

#endif  // ADEPT_MODEL_SCHEMA_H_
