// SchemaBuilder: convenience API for constructing well-formed WSM nets.
//
// The builder maintains an insertion cursor and appends nodes sequentially;
// composite blocks take one callback per branch. Errors are latched and
// reported by Build(), so modelling code stays linear:
//
//   SchemaBuilder b("online_order", 1);
//   NodeId get = b.Activity("get order");
//   b.Parallel({
//       [&](SchemaBuilder& s) { s.Activity("confirm order"); },
//       [&](SchemaBuilder& s) { s.Activity("compose order"); },
//   });
//   b.Activity("pack goods");
//   auto schema = b.Build();   // Result<shared_ptr<const ProcessSchema>>

#ifndef ADEPT_MODEL_SCHEMA_BUILDER_H_
#define ADEPT_MODEL_SCHEMA_BUILDER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "model/schema.h"

namespace adept {

class SchemaBuilder {
 public:
  struct ActivityOptions {
    std::string activity_template;
    RoleId role;
    ServerId server;
  };

  struct BlockIds {
    NodeId open;   // split / loop-start
    NodeId close;  // join / loop-end
  };

  using BranchFn = std::function<void(SchemaBuilder&)>;

  explicit SchemaBuilder(std::string type_name, int version = 1);

  // Appends an activity after the cursor and moves the cursor onto it.
  NodeId Activity(const std::string& name, const ActivityOptions& opts = {});

  // Declares a process data element.
  DataId Data(const std::string& name, DataType type);

  // Data edges for an existing node.
  void Reads(NodeId node, DataId data, bool optional = false);
  void Writes(NodeId node, DataId data);

  // Appends an AND block whose branches are built by the callbacks
  // (>= 2 branches; a callback that adds nothing yields an empty branch).
  BlockIds Parallel(const std::vector<BranchFn>& branches);

  // Appends an XOR block. `decision` is the integer data element evaluated
  // at the split; branch i is taken when its value equals i.
  BlockIds Conditional(DataId decision, const std::vector<BranchFn>& branches);

  // Appends a loop block. `condition` is the boolean data element evaluated
  // at the loop end; true repeats the body.
  BlockIds Loop(DataId condition, const BranchFn& body);

  // Adds a synchronization edge (from must precede to; endpoints must lie in
  // different branches of a common parallel block — verified at Build()).
  void SyncEdge(NodeId from, NodeId to);

  // Appends the end-flow node, freezes, and returns the schema.
  Result<std::shared_ptr<const ProcessSchema>> Build();

  // First latched error (OK while healthy).
  const Status& status() const { return status_; }

  // Escape hatch for constructs the convenience API does not cover.
  ProcessSchema* mutable_schema() { return schema_.get(); }

 private:
  void Latch(const Status& s);
  NodeId AppendNode(Node node);

  std::shared_ptr<ProcessSchema> schema_;
  NodeId cursor_;
  Status status_;
  bool built_ = false;
};

}  // namespace adept

#endif  // ADEPT_MODEL_SCHEMA_BUILDER_H_
