// Plain data carriers of the WSM-net meta model: Node, Edge, DataElement,
// DataEdge. These are value types owned by ProcessSchema.

#ifndef ADEPT_MODEL_NODE_H_
#define ADEPT_MODEL_NODE_H_

#include <map>
#include <string>

#include "common/ids.h"
#include "model/types.h"

namespace adept {

// A schema node. For kXorSplit, `decision_data` names the integer data
// element whose value selects the outgoing branch (matched against
// Edge::branch_value). For kLoopEnd, `loop_data` names the boolean data
// element that, when true after the iteration, triggers a loop back.
struct Node {
  NodeId id;
  NodeType type = NodeType::kActivity;
  std::string name;

  // Reference to the activity template implementing this step (free-form;
  // examples use it to attach behaviour).
  std::string activity_template;

  // Staff assignment: role whose users may work on this activity.
  RoleId role;

  // Partition for (simulated) distributed process control.
  ServerId server;

  // See class comment.
  DataId decision_data;
  DataId loop_data;

  // Free-form extension attributes (kept sorted for stable serialization).
  std::map<std::string, std::string> attributes;

  bool operator==(const Node& o) const {
    return id == o.id && type == o.type && name == o.name &&
           activity_template == o.activity_template && role == o.role &&
           server == o.server && decision_data == o.decision_data &&
           loop_data == o.loop_data && attributes == o.attributes;
  }
};

// A control/sync/loop edge. `branch_value` is only meaningful on control
// edges leaving a kXorSplit: the branch taken is the one whose value equals
// the split's decision data (default branch: 0).
struct Edge {
  EdgeId id;
  NodeId src;
  NodeId dst;
  EdgeType type = EdgeType::kControl;
  int branch_value = 0;

  bool operator==(const Edge& o) const {
    return id == o.id && src == o.src && dst == o.dst && type == o.type &&
           branch_value == o.branch_value;
  }
};

// A process data element (global store, versioned at runtime).
struct DataElement {
  DataId id;
  std::string name;
  DataType type = DataType::kString;

  bool operator==(const DataElement& o) const {
    return id == o.id && name == o.name && type == o.type;
  }
};

// Connects an activity to a data element. A mandatory (non-optional) read
// means the buildtime data-flow analysis must prove the element is written
// on every path leading to the reader ("no missing data").
struct DataEdge {
  NodeId node;
  DataId data;
  AccessMode mode = AccessMode::kRead;
  bool optional = false;

  bool operator==(const DataEdge& o) const {
    return node == o.node && data == o.data && mode == o.mode &&
           optional == o.optional;
  }
};

}  // namespace adept

#endif  // ADEPT_MODEL_NODE_H_
