#include "model/serialization.h"

#include <algorithm>

namespace adept {

namespace {

JsonValue NodeToJson(const Node& n) {
  JsonValue j = JsonValue::MakeObject();
  j.Set("id", JsonValue(n.id.value()));
  j.Set("type", JsonValue(static_cast<int>(n.type)));
  j.Set("name", JsonValue(n.name));
  if (!n.activity_template.empty()) {
    j.Set("tmpl", JsonValue(n.activity_template));
  }
  if (n.role.valid()) j.Set("role", JsonValue(n.role.value()));
  if (n.server.valid()) j.Set("server", JsonValue(n.server.value()));
  if (n.decision_data.valid()) {
    j.Set("decision", JsonValue(n.decision_data.value()));
  }
  if (n.loop_data.valid()) j.Set("loop_data", JsonValue(n.loop_data.value()));
  if (!n.attributes.empty()) {
    JsonValue attrs = JsonValue::MakeObject();
    for (const auto& [k, v] : n.attributes) attrs.Set(k, JsonValue(v));
    j.Set("attrs", std::move(attrs));
  }
  return j;
}

Result<Node> NodeFromJson(const JsonValue& j) {
  if (!j.is_object()) return Status::Corruption("node entry is not an object");
  Node n;
  n.id = NodeId(static_cast<uint32_t>(j.Get("id").as_int()));
  n.type = static_cast<NodeType>(j.Get("type").as_int());
  n.name = j.Get("name").as_string();
  n.activity_template = j.Get("tmpl").as_string();
  if (j.Has("role")) {
    n.role = RoleId(static_cast<uint32_t>(j.Get("role").as_int()));
  }
  if (j.Has("server")) {
    n.server = ServerId(static_cast<uint32_t>(j.Get("server").as_int()));
  }
  if (j.Has("decision")) {
    n.decision_data = DataId(static_cast<uint32_t>(j.Get("decision").as_int()));
  }
  if (j.Has("loop_data")) {
    n.loop_data = DataId(static_cast<uint32_t>(j.Get("loop_data").as_int()));
  }
  if (j.Has("attrs")) {
    for (const auto& [k, v] : j.Get("attrs").as_object()) {
      n.attributes[k] = v.as_string();
    }
  }
  return n;
}

JsonValue EdgeToJson(const Edge& e) {
  JsonValue j = JsonValue::MakeObject();
  j.Set("id", JsonValue(e.id.value()));
  j.Set("src", JsonValue(e.src.value()));
  j.Set("dst", JsonValue(e.dst.value()));
  j.Set("type", JsonValue(static_cast<int>(e.type)));
  if (e.branch_value != 0) j.Set("branch", JsonValue(e.branch_value));
  return j;
}

Result<Edge> EdgeFromJson(const JsonValue& j) {
  if (!j.is_object()) return Status::Corruption("edge entry is not an object");
  Edge e;
  e.id = EdgeId(static_cast<uint32_t>(j.Get("id").as_int()));
  e.src = NodeId(static_cast<uint32_t>(j.Get("src").as_int()));
  e.dst = NodeId(static_cast<uint32_t>(j.Get("dst").as_int()));
  e.type = static_cast<EdgeType>(j.Get("type").as_int());
  e.branch_value = static_cast<int>(j.Get("branch").as_int());
  return e;
}

}  // namespace

JsonValue SchemaToJson(const ProcessSchema& schema) {
  JsonValue j = JsonValue::MakeObject();
  j.Set("format", JsonValue(1));
  j.Set("type_name", JsonValue(schema.type_name()));
  j.Set("version", JsonValue(schema.version()));
  j.Set("next_node_id", JsonValue(schema.next_node_id()));
  j.Set("next_edge_id", JsonValue(schema.next_edge_id()));
  j.Set("next_data_id", JsonValue(schema.next_data_id()));

  JsonValue nodes = JsonValue::MakeArray();
  schema.VisitNodes([&](const Node& n) { nodes.Append(NodeToJson(n)); });
  j.Set("nodes", std::move(nodes));

  JsonValue edges = JsonValue::MakeArray();
  schema.VisitEdges([&](const Edge& e) { edges.Append(EdgeToJson(e)); });
  j.Set("edges", std::move(edges));

  JsonValue data = JsonValue::MakeArray();
  schema.VisitData([&](const DataElement& d) {
    JsonValue dj = JsonValue::MakeObject();
    dj.Set("id", JsonValue(d.id.value()));
    dj.Set("name", JsonValue(d.name));
    dj.Set("type", JsonValue(static_cast<int>(d.type)));
    data.Append(std::move(dj));
  });
  j.Set("data", std::move(data));

  JsonValue dedges = JsonValue::MakeArray();
  for (const DataEdge& de : schema.data_edges()) {
    JsonValue dj = JsonValue::MakeObject();
    dj.Set("node", JsonValue(de.node.value()));
    dj.Set("data", JsonValue(de.data.value()));
    dj.Set("mode", JsonValue(static_cast<int>(de.mode)));
    if (de.optional) dj.Set("optional", JsonValue(true));
    dedges.Append(std::move(dj));
  }
  j.Set("data_edges", std::move(dedges));
  return j;
}

Result<std::shared_ptr<ProcessSchema>> SchemaFromJson(const JsonValue& json) {
  if (!json.is_object()) return Status::Corruption("schema json not an object");
  if (json.Get("format").as_int() != 1) {
    return Status::Corruption("unsupported schema format");
  }
  auto schema = std::make_shared<ProcessSchema>(
      json.Get("type_name").as_string(),
      static_cast<int>(json.Get("version").as_int()));

  for (const JsonValue& nj : json.Get("nodes").as_array()) {
    ADEPT_ASSIGN_OR_RETURN(Node n, NodeFromJson(nj));
    ADEPT_RETURN_IF_ERROR(schema->AddNodeWithId(std::move(n)));
  }
  for (const JsonValue& ej : json.Get("edges").as_array()) {
    ADEPT_ASSIGN_OR_RETURN(Edge e, EdgeFromJson(ej));
    ADEPT_RETURN_IF_ERROR(schema->AddEdgeWithId(e));
  }
  for (const JsonValue& dj : json.Get("data").as_array()) {
    DataElement d;
    d.id = DataId(static_cast<uint32_t>(dj.Get("id").as_int()));
    d.name = dj.Get("name").as_string();
    d.type = static_cast<DataType>(dj.Get("type").as_int());
    ADEPT_RETURN_IF_ERROR(schema->AddDataWithId(std::move(d)));
  }
  for (const JsonValue& dj : json.Get("data_edges").as_array()) {
    ADEPT_RETURN_IF_ERROR(schema->AddDataEdge(
        NodeId(static_cast<uint32_t>(dj.Get("node").as_int())),
        DataId(static_cast<uint32_t>(dj.Get("data").as_int())),
        static_cast<AccessMode>(dj.Get("mode").as_int()),
        dj.Get("optional").is_bool() && dj.Get("optional").as_bool()));
  }
  schema->BumpCounters(
      static_cast<uint32_t>(json.Get("next_node_id").as_int()),
      static_cast<uint32_t>(json.Get("next_edge_id").as_int()),
      static_cast<uint32_t>(json.Get("next_data_id").as_int()));
  ADEPT_RETURN_IF_ERROR(schema->Freeze());
  return schema;
}

std::shared_ptr<ProcessSchema> MaterializeView(const SchemaView& view,
                                               uint32_t next_node_id,
                                               uint32_t next_edge_id,
                                               uint32_t next_data_id) {
  auto schema =
      std::make_shared<ProcessSchema>(view.type_name(), view.version());
  view.VisitNodes([&](const Node& n) {
    Status st = schema->AddNodeWithId(n);
    (void)st;  // ids in a view are unique by construction
  });
  view.VisitEdges([&](const Edge& e) {
    Status st = schema->AddEdgeWithId(e);
    (void)st;
  });
  view.VisitData([&](const DataElement& d) {
    Status st = schema->AddDataWithId(d);
    (void)st;
  });
  view.VisitNodes([&](const Node& n) {
    view.VisitDataEdges(n.id, [&](const DataEdge& de) {
      Status st = schema->AddDataEdge(de.node, de.data, de.mode, de.optional);
      (void)st;
    });
  });
  schema->BumpCounters(next_node_id, next_edge_id, next_data_id);
  return schema;
}

}  // namespace adept
