#include "model/schema_builder.h"

#include <algorithm>

namespace adept {

SchemaBuilder::SchemaBuilder(std::string type_name, int version)
    : schema_(std::make_shared<ProcessSchema>(std::move(type_name), version)) {
  Node start;
  start.type = NodeType::kStartFlow;
  start.name = "start";
  cursor_ = AppendNode(std::move(start));
}

void SchemaBuilder::Latch(const Status& s) {
  if (status_.ok() && !s.ok()) status_ = s;
}

NodeId SchemaBuilder::AppendNode(Node node) {
  auto added = schema_->AddNode(std::move(node));
  if (!added.ok()) {
    Latch(added.status());
    return NodeId::Invalid();
  }
  if (cursor_.valid()) {
    auto edge = schema_->AddEdge(cursor_, *added, EdgeType::kControl);
    if (!edge.ok()) Latch(edge.status());
  }
  cursor_ = *added;
  return *added;
}

NodeId SchemaBuilder::Activity(const std::string& name,
                               const ActivityOptions& opts) {
  Node n;
  n.type = NodeType::kActivity;
  n.name = name;
  n.activity_template = opts.activity_template;
  n.role = opts.role;
  n.server = opts.server;
  return AppendNode(std::move(n));
}

DataId SchemaBuilder::Data(const std::string& name, DataType type) {
  auto added = schema_->AddData(name, type);
  if (!added.ok()) {
    Latch(added.status());
    return DataId::Invalid();
  }
  return *added;
}

void SchemaBuilder::Reads(NodeId node, DataId data, bool optional) {
  Latch(schema_->AddDataEdge(node, data, AccessMode::kRead, optional));
}

void SchemaBuilder::Writes(NodeId node, DataId data) {
  Latch(schema_->AddDataEdge(node, data, AccessMode::kWrite));
}

SchemaBuilder::BlockIds SchemaBuilder::Parallel(
    const std::vector<BranchFn>& branches) {
  if (branches.size() < 2) {
    Latch(Status::InvalidArgument("parallel block needs >= 2 branches"));
    return {};
  }
  Node split;
  split.type = NodeType::kAndSplit;
  split.name = "and_split";
  NodeId split_id = AppendNode(std::move(split));

  std::vector<NodeId> tails;
  for (const BranchFn& fn : branches) {
    cursor_ = split_id;
    fn(*this);
    tails.push_back(cursor_);
  }

  Node join;
  join.type = NodeType::kAndJoin;
  join.name = "and_join";
  cursor_ = NodeId::Invalid();  // suppress auto-link; we wire tails below
  NodeId join_id = AppendNode(std::move(join));
  for (NodeId tail : tails) {
    auto edge = schema_->AddEdge(tail, join_id, EdgeType::kControl);
    if (!edge.ok()) Latch(edge.status());
  }
  cursor_ = join_id;
  return {split_id, join_id};
}

SchemaBuilder::BlockIds SchemaBuilder::Conditional(
    DataId decision, const std::vector<BranchFn>& branches) {
  if (branches.size() < 2) {
    Latch(Status::InvalidArgument("conditional block needs >= 2 branches"));
    return {};
  }
  Node split;
  split.type = NodeType::kXorSplit;
  split.name = "xor_split";
  split.decision_data = decision;
  NodeId split_id = AppendNode(std::move(split));

  // Branch entry edges carry the branch index as selection code. The first
  // node appended inside a branch callback creates the split's new out-edge;
  // we detect it by diffing the split's out-edges around the callback.
  std::vector<NodeId> tails;
  for (size_t i = 0; i < branches.size(); ++i) {
    std::vector<EdgeId> before;
    schema_->VisitOutEdges(split_id,
                           [&](const Edge& e) { before.push_back(e.id); });
    cursor_ = split_id;
    branches[i](*this);
    tails.push_back(cursor_);
    schema_->VisitOutEdges(split_id, [&](const Edge& e) {
      if (std::find(before.begin(), before.end(), e.id) == before.end()) {
        Edge* entry = schema_->MutableEdge(e.id);
        if (entry != nullptr) entry->branch_value = static_cast<int>(i);
      }
    });
  }

  Node join;
  join.type = NodeType::kXorJoin;
  join.name = "xor_join";
  cursor_ = NodeId::Invalid();
  NodeId join_id = AppendNode(std::move(join));
  for (size_t i = 0; i < tails.size(); ++i) {
    NodeId tail = tails[i];
    if (tail == split_id) {
      // Empty branch: direct split -> join edge carrying the branch value.
      auto edge = schema_->AddEdge(split_id, join_id, EdgeType::kControl,
                                   static_cast<int>(i));
      if (!edge.ok()) Latch(edge.status());
    } else {
      auto edge = schema_->AddEdge(tail, join_id, EdgeType::kControl);
      if (!edge.ok()) Latch(edge.status());
    }
  }
  cursor_ = join_id;
  return {split_id, join_id};
}

SchemaBuilder::BlockIds SchemaBuilder::Loop(DataId condition,
                                            const BranchFn& body) {
  Node ls;
  ls.type = NodeType::kLoopStart;
  ls.name = "loop_start";
  NodeId start_id = AppendNode(std::move(ls));

  body(*this);
  NodeId tail = cursor_;

  Node le;
  le.type = NodeType::kLoopEnd;
  le.name = "loop_end";
  le.loop_data = condition;
  cursor_ = NodeId::Invalid();
  NodeId end_id = AppendNode(std::move(le));
  if (tail == start_id) {
    Latch(Status::InvalidArgument("loop body must contain at least one node"));
  } else {
    auto edge = schema_->AddEdge(tail, end_id, EdgeType::kControl);
    if (!edge.ok()) Latch(edge.status());
  }
  auto loop_edge = schema_->AddEdge(end_id, start_id, EdgeType::kLoop);
  if (!loop_edge.ok()) Latch(loop_edge.status());
  cursor_ = end_id;
  return {start_id, end_id};
}

void SchemaBuilder::SyncEdge(NodeId from, NodeId to) {
  auto edge = schema_->AddEdge(from, to, EdgeType::kSync);
  if (!edge.ok()) Latch(edge.status());
}

Result<std::shared_ptr<const ProcessSchema>> SchemaBuilder::Build() {
  if (built_) return Status::FailedPrecondition("Build() called twice");
  built_ = true;
  Node end;
  end.type = NodeType::kEndFlow;
  end.name = "end";
  AppendNode(std::move(end));
  if (!status_.ok()) return status_;
  ADEPT_RETURN_IF_ERROR(schema_->Freeze());
  return std::shared_ptr<const ProcessSchema>(schema_);
}

}  // namespace adept
