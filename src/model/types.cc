#include "model/types.h"

namespace adept {

const char* NodeTypeToString(NodeType t) {
  switch (t) {
    case NodeType::kStartFlow:
      return "StartFlow";
    case NodeType::kEndFlow:
      return "EndFlow";
    case NodeType::kActivity:
      return "Activity";
    case NodeType::kAndSplit:
      return "AndSplit";
    case NodeType::kAndJoin:
      return "AndJoin";
    case NodeType::kXorSplit:
      return "XorSplit";
    case NodeType::kXorJoin:
      return "XorJoin";
    case NodeType::kLoopStart:
      return "LoopStart";
    case NodeType::kLoopEnd:
      return "LoopEnd";
  }
  return "?";
}

const char* EdgeTypeToString(EdgeType t) {
  switch (t) {
    case EdgeType::kControl:
      return "Control";
    case EdgeType::kSync:
      return "Sync";
    case EdgeType::kLoop:
      return "Loop";
  }
  return "?";
}

const char* DataTypeToString(DataType t) {
  switch (t) {
    case DataType::kBool:
      return "bool";
    case DataType::kInt:
      return "int";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "string";
  }
  return "?";
}

const char* AccessModeToString(AccessMode m) {
  switch (m) {
    case AccessMode::kRead:
      return "read";
    case AccessMode::kWrite:
      return "write";
  }
  return "?";
}

bool IsBlockOpener(NodeType t) {
  return t == NodeType::kAndSplit || t == NodeType::kXorSplit ||
         t == NodeType::kLoopStart;
}

bool IsBlockCloser(NodeType t) {
  return t == NodeType::kAndJoin || t == NodeType::kXorJoin ||
         t == NodeType::kLoopEnd;
}

}  // namespace adept
