// Enumerations of the ADEPT WSM-net meta model.
//
// ADEPT2 process schemas are block-structured graphs ("WSM nets"): typed
// nodes connected by control, synchronization, and loop edges, plus process
// data elements connected to activities by read/write data edges.

#ifndef ADEPT_MODEL_TYPES_H_
#define ADEPT_MODEL_TYPES_H_

namespace adept {

// Node types. Splits and joins come in matched pairs enclosing properly
// nested blocks; loop blocks are delimited by kLoopStart/kLoopEnd.
enum class NodeType {
  kStartFlow = 0,  // unique process entry
  kEndFlow,        // unique process exit
  kActivity,       // work item executed by a user/application
  kAndSplit,       // opens a parallel block (all branches execute)
  kAndJoin,        // closes a parallel block
  kXorSplit,       // opens a conditional block (one branch executes)
  kXorJoin,        // closes a conditional block
  kLoopStart,      // opens a loop block
  kLoopEnd,        // closes a loop block; may signal another iteration
};

// Edge types. Control edges define precedence inside a branch; sync edges
// order activities of *different* branches of a common parallel block
// (paper: "ET=Sync"); the loop edge connects kLoopEnd back to kLoopStart.
enum class EdgeType {
  kControl = 0,
  kSync,
  kLoop,
};

// Types of process data elements.
enum class DataType {
  kBool = 0,
  kInt,
  kDouble,
  kString,
};

// Direction of a data edge between an activity and a data element.
enum class AccessMode {
  kRead = 0,
  kWrite,
};

const char* NodeTypeToString(NodeType t);
const char* EdgeTypeToString(EdgeType t);
const char* DataTypeToString(DataType t);
const char* AccessModeToString(AccessMode m);

// True for kAndSplit/kXorSplit/kLoopStart (nodes that open a block).
bool IsBlockOpener(NodeType t);
// True for kAndJoin/kXorJoin/kLoopEnd (nodes that close a block).
bool IsBlockCloser(NodeType t);

}  // namespace adept

#endif  // ADEPT_MODEL_TYPES_H_
