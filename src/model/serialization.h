// JSON (de)serialization of process schemas.
//
// The storage module persists schemas through these functions; tests use
// them for round-trip checks. The format is stable and versioned via the
// top-level "format" field.

#ifndef ADEPT_MODEL_SERIALIZATION_H_
#define ADEPT_MODEL_SERIALIZATION_H_

#include <memory>

#include "common/json.h"
#include "common/status.h"
#include "model/schema.h"

namespace adept {

// Serializes a frozen (or mutable) schema, including id counters.
JsonValue SchemaToJson(const ProcessSchema& schema);

// Rebuilds and freezes a schema from its JSON form.
Result<std::shared_ptr<ProcessSchema>> SchemaFromJson(const JsonValue& json);

// Deep-copies an arbitrary SchemaView into a mutable ProcessSchema,
// preserving entity ids. Counters are set to (max id + 1) unless higher
// values are supplied (pass the source schema's counters to keep id-space
// stability across deletions).
std::shared_ptr<ProcessSchema> MaterializeView(const SchemaView& view,
                                               uint32_t next_node_id = 0,
                                               uint32_t next_edge_id = 0,
                                               uint32_t next_data_id = 0);

}  // namespace adept

#endif  // ADEPT_MODEL_SERIALIZATION_H_
