#include "model/schema.h"

#include <algorithm>
#include <deque>

#include "common/string_util.h"

namespace adept {

ProcessSchema::ProcessSchema(std::string type_name, int version)
    : type_name_(std::move(type_name)), version_(version) {}

Status ProcessSchema::CheckMutable() const {
  if (frozen_) {
    return Status::FailedPrecondition(
        "schema is frozen; clone it to derive a new version");
  }
  return Status::OK();
}

Result<NodeId> ProcessSchema::AddNode(Node node) {
  ADEPT_RETURN_IF_ERROR(CheckMutable());
  node.id = NodeId(next_node_id_++);
  uint32_t key = node.id.value();
  nodes_.emplace(key, std::move(node));
  return NodeId(key);
}

Status ProcessSchema::AddNodeWithId(Node node) {
  ADEPT_RETURN_IF_ERROR(CheckMutable());
  if (!node.id.valid()) return Status::InvalidArgument("node id required");
  uint32_t key = node.id.value();
  if (!nodes_.emplace(key, std::move(node)).second) {
    return Status::AlreadyExists(StrFormat("node id %u in use", key));
  }
  next_node_id_ = std::max(next_node_id_, key + 1);
  return Status::OK();
}

Result<EdgeId> ProcessSchema::AddEdge(NodeId src, NodeId dst, EdgeType type,
                                      int branch_value) {
  ADEPT_RETURN_IF_ERROR(CheckMutable());
  if (FindNode(src) == nullptr || FindNode(dst) == nullptr) {
    return Status::InvalidArgument("edge endpoint does not exist");
  }
  Edge e;
  e.id = EdgeId(next_edge_id_++);
  e.src = src;
  e.dst = dst;
  e.type = type;
  e.branch_value = branch_value;
  uint32_t key = e.id.value();
  edges_.emplace(key, e);
  return EdgeId(key);
}

Status ProcessSchema::AddEdgeWithId(Edge edge) {
  ADEPT_RETURN_IF_ERROR(CheckMutable());
  if (!edge.id.valid()) return Status::InvalidArgument("edge id required");
  uint32_t key = edge.id.value();
  if (!edges_.emplace(key, edge).second) {
    return Status::AlreadyExists(StrFormat("edge id %u in use", key));
  }
  next_edge_id_ = std::max(next_edge_id_, key + 1);
  return Status::OK();
}

Result<DataId> ProcessSchema::AddData(std::string name, DataType type) {
  ADEPT_RETURN_IF_ERROR(CheckMutable());
  DataElement d;
  d.id = DataId(next_data_id_++);
  d.name = std::move(name);
  d.type = type;
  uint32_t key = d.id.value();
  data_.emplace(key, std::move(d));
  return DataId(key);
}

Status ProcessSchema::AddDataWithId(DataElement element) {
  ADEPT_RETURN_IF_ERROR(CheckMutable());
  if (!element.id.valid()) return Status::InvalidArgument("data id required");
  uint32_t key = element.id.value();
  if (!data_.emplace(key, std::move(element)).second) {
    return Status::AlreadyExists(StrFormat("data id %u in use", key));
  }
  next_data_id_ = std::max(next_data_id_, key + 1);
  return Status::OK();
}

Status ProcessSchema::AddDataEdge(NodeId node, DataId data, AccessMode mode,
                                  bool optional) {
  ADEPT_RETURN_IF_ERROR(CheckMutable());
  if (FindNode(node) == nullptr) return Status::InvalidArgument("no such node");
  if (FindData(data) == nullptr) {
    return Status::InvalidArgument("no such data element");
  }
  for (const DataEdge& de : data_edges_) {
    if (de.node == node && de.data == data && de.mode == mode) {
      return Status::AlreadyExists("data edge already present");
    }
  }
  data_edges_.push_back(DataEdge{node, data, mode, optional});
  return Status::OK();
}

Status ProcessSchema::RemoveNode(NodeId id) {
  ADEPT_RETURN_IF_ERROR(CheckMutable());
  if (nodes_.erase(id.value()) == 0) return Status::NotFound("no such node");
  for (auto it = edges_.begin(); it != edges_.end();) {
    if (it->second.src == id || it->second.dst == id) {
      it = edges_.erase(it);
    } else {
      ++it;
    }
  }
  data_edges_.erase(
      std::remove_if(data_edges_.begin(), data_edges_.end(),
                     [&](const DataEdge& de) { return de.node == id; }),
      data_edges_.end());
  return Status::OK();
}

Status ProcessSchema::RemoveEdge(EdgeId id) {
  ADEPT_RETURN_IF_ERROR(CheckMutable());
  if (edges_.erase(id.value()) == 0) return Status::NotFound("no such edge");
  return Status::OK();
}

Status ProcessSchema::RemoveData(DataId id) {
  ADEPT_RETURN_IF_ERROR(CheckMutable());
  if (data_.erase(id.value()) == 0) {
    return Status::NotFound("no such data element");
  }
  data_edges_.erase(
      std::remove_if(data_edges_.begin(), data_edges_.end(),
                     [&](const DataEdge& de) { return de.data == id; }),
      data_edges_.end());
  return Status::OK();
}

Status ProcessSchema::RemoveDataEdge(NodeId node, DataId data,
                                     AccessMode mode) {
  ADEPT_RETURN_IF_ERROR(CheckMutable());
  auto it = std::find_if(data_edges_.begin(), data_edges_.end(),
                         [&](const DataEdge& de) {
                           return de.node == node && de.data == data &&
                                  de.mode == mode;
                         });
  if (it == data_edges_.end()) return Status::NotFound("no such data edge");
  data_edges_.erase(it);
  return Status::OK();
}

Node* ProcessSchema::MutableNode(NodeId id) {
  if (frozen_) return nullptr;
  auto it = nodes_.find(id.value());
  return it == nodes_.end() ? nullptr : &it->second;
}

Edge* ProcessSchema::MutableEdge(EdgeId id) {
  if (frozen_) return nullptr;
  auto it = edges_.find(id.value());
  return it == edges_.end() ? nullptr : &it->second;
}

void ProcessSchema::BumpCounters(uint32_t node, uint32_t edge, uint32_t data) {
  next_node_id_ = std::max(next_node_id_, node);
  next_edge_id_ = std::max(next_edge_id_, edge);
  next_data_id_ = std::max(next_data_id_, data);
}

Status ProcessSchema::Freeze() {
  ADEPT_RETURN_IF_ERROR(CheckMutable());

  // Locate unique start / end nodes.
  start_ = NodeId::Invalid();
  end_ = NodeId::Invalid();
  for (const auto& [_, n] : nodes_) {
    if (n.type == NodeType::kStartFlow) {
      if (start_.valid()) {
        return Status::VerificationFailed("multiple start-flow nodes");
      }
      start_ = n.id;
    } else if (n.type == NodeType::kEndFlow) {
      if (end_.valid()) {
        return Status::VerificationFailed("multiple end-flow nodes");
      }
      end_ = n.id;
    }
  }
  if (!start_.valid() || !end_.valid()) {
    return Status::VerificationFailed("missing start-flow or end-flow node");
  }

  // Edge endpoints must be live; build adjacency ordered by edge id
  // (map iteration is ascending, so pushes stay sorted).
  out_edges_.clear();
  in_edges_.clear();
  for (const auto& [_, e] : edges_) {
    if (FindNode(e.src) == nullptr || FindNode(e.dst) == nullptr) {
      return Status::VerificationFailed(
          StrFormat("edge %u has a dangling endpoint", e.id.value()));
    }
    out_edges_[e.src.value()].push_back(e.id);
    in_edges_[e.dst.value()].push_back(e.id);
  }

  node_data_edges_.clear();
  for (size_t i = 0; i < data_edges_.size(); ++i) {
    const DataEdge& de = data_edges_[i];
    if (FindNode(de.node) == nullptr || FindData(de.data) == nullptr) {
      return Status::VerificationFailed("data edge has a dangling endpoint");
    }
    node_data_edges_[de.node.value()].push_back(i);
  }

  frozen_ = true;

  // Topological ranks over control edges (may legitimately fail for schemas
  // that the verifier will reject; record and carry on).
  std::vector<NodeId> order = TopologicalOrder();
  topo_rank_.clear();
  topo_valid_ = order.size() == node_count();
  if (topo_valid_) {
    for (size_t i = 0; i < order.size(); ++i) {
      topo_rank_[order[i].value()] = static_cast<int>(i);
    }
  }

  // Block structure (also allowed to fail pre-verification).
  auto tree = BlockTree::Build(*this);
  if (tree.ok()) {
    block_tree_ = std::move(tree).value();
    block_tree_error_.clear();
  } else {
    block_tree_.reset();
    block_tree_error_ = tree.status().message();
  }
  return Status::OK();
}

std::shared_ptr<ProcessSchema> ProcessSchema::Clone() const {
  auto copy = std::make_shared<ProcessSchema>(type_name_, version_);
  copy->nodes_ = nodes_;
  copy->edges_ = edges_;
  copy->data_ = data_;
  copy->data_edges_ = data_edges_;
  copy->next_node_id_ = next_node_id_;
  copy->next_edge_id_ = next_edge_id_;
  copy->next_data_id_ = next_data_id_;
  return copy;
}

NodeId ProcessSchema::start_node() const {
  if (frozen_) return start_;
  for (const auto& [_, n] : nodes_) {
    if (n.type == NodeType::kStartFlow) return n.id;
  }
  return NodeId::Invalid();
}

NodeId ProcessSchema::end_node() const {
  if (frozen_) return end_;
  for (const auto& [_, n] : nodes_) {
    if (n.type == NodeType::kEndFlow) return n.id;
  }
  return NodeId::Invalid();
}

const Node* ProcessSchema::FindNode(NodeId id) const {
  if (!id.valid()) return nullptr;
  auto it = nodes_.find(id.value());
  return it == nodes_.end() ? nullptr : &it->second;
}

const Edge* ProcessSchema::FindEdge(EdgeId id) const {
  if (!id.valid()) return nullptr;
  auto it = edges_.find(id.value());
  return it == edges_.end() ? nullptr : &it->second;
}

const DataElement* ProcessSchema::FindData(DataId id) const {
  if (!id.valid()) return nullptr;
  auto it = data_.find(id.value());
  return it == data_.end() ? nullptr : &it->second;
}

void ProcessSchema::VisitNodes(
    const std::function<void(const Node&)>& fn) const {
  for (const auto& [_, n] : nodes_) fn(n);
}

void ProcessSchema::VisitEdges(
    const std::function<void(const Edge&)>& fn) const {
  for (const auto& [_, e] : edges_) fn(e);
}

void ProcessSchema::VisitData(
    const std::function<void(const DataElement&)>& fn) const {
  for (const auto& [_, d] : data_) fn(d);
}

void ProcessSchema::VisitOutEdges(
    NodeId node, const std::function<void(const Edge&)>& fn) const {
  if (frozen_) {
    auto it = out_edges_.find(node.value());
    if (it == out_edges_.end()) return;
    for (EdgeId id : it->second) fn(*FindEdge(id));
    return;
  }
  for (const auto& [_, e] : edges_) {
    if (e.src == node) fn(e);
  }
}

void ProcessSchema::VisitInEdges(
    NodeId node, const std::function<void(const Edge&)>& fn) const {
  if (frozen_) {
    auto it = in_edges_.find(node.value());
    if (it == in_edges_.end()) return;
    for (EdgeId id : it->second) fn(*FindEdge(id));
    return;
  }
  for (const auto& [_, e] : edges_) {
    if (e.dst == node) fn(e);
  }
}

void ProcessSchema::VisitDataEdges(
    NodeId node, const std::function<void(const DataEdge&)>& fn) const {
  if (frozen_) {
    auto it = node_data_edges_.find(node.value());
    if (it == node_data_edges_.end()) return;
    for (size_t i : it->second) fn(data_edges_[i]);
    return;
  }
  for (const DataEdge& de : data_edges_) {
    if (de.node == node) fn(de);
  }
}

Result<int> ProcessSchema::TopoRank(NodeId node) const {
  if (!frozen_) return Status::FailedPrecondition("schema not frozen");
  if (!topo_valid_) {
    return Status::FailedPrecondition("control graph is cyclic");
  }
  auto it = topo_rank_.find(node.value());
  if (it == topo_rank_.end()) return Status::NotFound("no such node");
  return it->second;
}

Result<const BlockTree*> ProcessSchema::block_tree() const {
  if (!frozen_) return Status::FailedPrecondition("schema not frozen");
  if (!block_tree_.has_value()) {
    return Status::VerificationFailed(block_tree_error_.empty()
                                          ? "block structure not available"
                                          : block_tree_error_);
  }
  return &*block_tree_;
}

size_t ProcessSchema::MemoryFootprint() const {
  // Red-black tree / hash node overheads approximated at 48 bytes.
  constexpr size_t kNodeOverhead = 48;
  size_t bytes = sizeof(*this);
  for (const auto& [_, n] : nodes_) {
    bytes += kNodeOverhead + sizeof(Node) + n.name.capacity() +
             n.activity_template.capacity();
    for (const auto& [k, v] : n.attributes) {
      bytes += k.capacity() + v.capacity() + kNodeOverhead;
    }
  }
  bytes += edges_.size() * (kNodeOverhead + sizeof(Edge));
  for (const auto& [_, d] : data_) {
    bytes += kNodeOverhead + sizeof(DataElement) + d.name.capacity();
  }
  bytes += data_edges_.capacity() * sizeof(DataEdge);
  for (const auto& [_, v] : out_edges_) {
    bytes += kNodeOverhead + v.capacity() * sizeof(EdgeId);
  }
  for (const auto& [_, v] : in_edges_) {
    bytes += kNodeOverhead + v.capacity() * sizeof(EdgeId);
  }
  for (const auto& [_, v] : node_data_edges_) {
    bytes += kNodeOverhead + v.capacity() * sizeof(size_t);
  }
  bytes += topo_rank_.size() * (kNodeOverhead / 2 + sizeof(int));
  return bytes;
}

}  // namespace adept
