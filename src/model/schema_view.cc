#include "model/schema_view.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

namespace adept {

std::vector<NodeId> SchemaView::NodeIds() const {
  std::vector<NodeId> out;
  out.reserve(node_count());
  VisitNodes([&](const Node& n) { out.push_back(n.id); });
  return out;
}

std::vector<EdgeId> SchemaView::EdgeIds() const {
  std::vector<EdgeId> out;
  out.reserve(edge_count());
  VisitEdges([&](const Edge& e) { out.push_back(e.id); });
  return out;
}

std::vector<DataId> SchemaView::DataIds() const {
  std::vector<DataId> out;
  out.reserve(data_count());
  VisitData([&](const DataElement& d) { out.push_back(d.id); });
  return out;
}

std::vector<NodeId> SchemaView::Successors(NodeId node, EdgeType type) const {
  std::vector<NodeId> out;
  VisitOutEdges(node, [&](const Edge& e) {
    if (e.type == type) out.push_back(e.dst);
  });
  return out;
}

std::vector<NodeId> SchemaView::Predecessors(NodeId node, EdgeType type) const {
  std::vector<NodeId> out;
  VisitInEdges(node, [&](const Edge& e) {
    if (e.type == type) out.push_back(e.src);
  });
  return out;
}

NodeId SchemaView::ControlSuccessor(NodeId node) const {
  auto succs = Successors(node, EdgeType::kControl);
  if (succs.size() != 1) return NodeId::Invalid();
  return succs[0];
}

NodeId SchemaView::ControlPredecessor(NodeId node) const {
  auto preds = Predecessors(node, EdgeType::kControl);
  if (preds.size() != 1) return NodeId::Invalid();
  return preds[0];
}

const Edge* SchemaView::FindEdgeBetween(NodeId src, NodeId dst,
                                        EdgeType type) const {
  const Edge* found = nullptr;
  VisitOutEdges(src, [&](const Edge& e) {
    if (found == nullptr && e.dst == dst && e.type == type) {
      found = FindEdge(e.id);
    }
  });
  return found;
}

NodeId SchemaView::FindNodeByName(const std::string& name) const {
  NodeId found = NodeId::Invalid();
  VisitNodes([&](const Node& n) {
    if (!found.valid() && n.name == name) found = n.id;
  });
  return found;
}

DataId SchemaView::FindDataByName(const std::string& name) const {
  DataId found = DataId::Invalid();
  VisitData([&](const DataElement& d) {
    if (!found.valid() && d.name == name) found = d.id;
  });
  return found;
}

std::vector<DataEdge> SchemaView::DataEdgesOf(NodeId node,
                                              AccessMode mode) const {
  std::vector<DataEdge> out;
  VisitDataEdges(node, [&](const DataEdge& de) {
    if (de.mode == mode) out.push_back(de);
  });
  return out;
}

bool SchemaView::ReachableByControl(NodeId a, NodeId b) const {
  if (a == b) return true;
  std::unordered_set<NodeId> visited;
  std::deque<NodeId> queue{a};
  visited.insert(a);
  while (!queue.empty()) {
    NodeId cur = queue.front();
    queue.pop_front();
    bool hit = false;
    VisitOutEdges(cur, [&](const Edge& e) {
      if (e.type != EdgeType::kControl || hit) return;
      if (e.dst == b) {
        hit = true;
        return;
      }
      if (visited.insert(e.dst).second) queue.push_back(e.dst);
    });
    if (hit) return true;
  }
  return false;
}

std::vector<NodeId> SchemaView::TopologicalOrder() const {
  // Kahn's algorithm over control edges.
  std::unordered_map<NodeId, int> indegree;
  std::vector<NodeId> nodes = NodeIds();
  for (NodeId n : nodes) indegree[n] = 0;
  VisitEdges([&](const Edge& e) {
    if (e.type == EdgeType::kControl) indegree[e.dst]++;
  });
  std::deque<NodeId> ready;
  for (NodeId n : nodes) {
    if (indegree[n] == 0) ready.push_back(n);
  }
  // Deterministic tie-breaking: smallest id first.
  std::sort(ready.begin(), ready.end());
  std::vector<NodeId> order;
  order.reserve(nodes.size());
  while (!ready.empty()) {
    NodeId cur = ready.front();
    ready.pop_front();
    order.push_back(cur);
    std::vector<NodeId> next;
    VisitOutEdges(cur, [&](const Edge& e) {
      if (e.type != EdgeType::kControl) return;
      if (--indegree[e.dst] == 0) next.push_back(e.dst);
    });
    std::sort(next.begin(), next.end());
    for (NodeId n : next) ready.push_back(n);
  }
  return order;  // shorter than nodes.size() iff control graph has a cycle
}

}  // namespace adept
