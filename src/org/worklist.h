// WorklistManager: offers activated activities to authorized users.
//
// Subscribes to instance events: an activity entering Activated with a
// staff-assignment role creates an offered WorkItem; leaving Activated
// closes it (started, or revoked — the paper stresses that ad-hoc deletions
// and migration demotions must cleanly retract work items, "all complexity
// ... is hidden from users").

#ifndef ADEPT_ORG_WORKLIST_H_
#define ADEPT_ORG_WORKLIST_H_

#include <map>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "org/org_model.h"
#include "runtime/events.h"
#include "runtime/instance.h"

namespace adept {

enum class WorkItemState {
  kOffered = 0,  // visible in role members' worklists
  kClaimed,      // reserved by one user, not yet started
  kStarted,      // activity execution began
  kRevoked,      // retracted (skip, deletion, demotion)
};

const char* WorkItemStateToString(WorkItemState s);

struct WorkItem {
  WorkItemId id;
  InstanceId instance;
  NodeId node;
  RoleId role;
  WorkItemState state = WorkItemState::kOffered;
  UserId claimed_by;
};

class WorklistManager : public InstanceObserver {
 public:
  explicit WorklistManager(const OrgModel* org) : org_(org) {}

  // InstanceObserver:
  void OnNodeStateChange(const ProcessInstance& instance, NodeId node,
                         NodeState from, NodeState to) override;

  // Items currently offered to `user` (role membership filter).
  std::vector<WorkItem> OffersFor(UserId user) const;

  // All live (offered/claimed) items.
  std::vector<WorkItem> OpenItems() const;

  // Reserves an offered item for `user` (must hold the role).
  Status Claim(WorkItemId item, UserId user);

  const std::map<WorkItemId, WorkItem>& items() const { return items_; }

  size_t offered_count() const;
  size_t revoked_count() const { return revoked_count_; }

 private:
  WorkItem* LiveItemFor(InstanceId instance, NodeId node);

  const OrgModel* org_;
  std::map<WorkItemId, WorkItem> items_;
  uint64_t next_item_ = 1;
  size_t revoked_count_ = 0;
};

}  // namespace adept

#endif  // ADEPT_ORG_WORKLIST_H_
