// WorklistManager: offers activated activities to authorized users.
//
// Subscribes to instance events: an activity entering Activated with a
// staff-assignment role creates an offered WorkItem; leaving Activated
// closes it (started, or revoked — the paper stresses that ad-hoc deletions
// and migration demotions must cleanly retract work items, "all complexity
// ... is hidden from users").

#ifndef ADEPT_ORG_WORKLIST_H_
#define ADEPT_ORG_WORKLIST_H_

#include <map>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "org/org_model.h"
#include "runtime/events.h"
#include "runtime/instance.h"

namespace adept {

enum class WorkItemState {
  kOffered = 0,  // visible in role members' worklists
  kClaimed,      // reserved by one user, not yet started
  kStarted,      // activity execution began
  kRevoked,      // retracted (skip, deletion, demotion)
};

const char* WorkItemStateToString(WorkItemState s);

struct WorkItem {
  WorkItemId id;
  InstanceId instance;
  NodeId node;
  RoleId role;
  WorkItemState state = WorkItemState::kOffered;
  UserId claimed_by;
  // Activation epoch: completed runs of the node when the item was
  // offered. Distinguishes loop iterations of the same (instance, node)
  // in the worklist service's claim journal (see worklist_service.h).
  uint64_t epoch = 0;
};

// The staff-assignment activity behind `node`, or nullptr when the node
// does not exist, is not an activity, or carries no role. The single
// source of the offer-eligibility rule shared by WorklistManager and
// WorklistService.
const Node* OfferableActivity(const SchemaView& schema, NodeId node);

// Completed runs of `node` per the instance trace — the activation epoch
// recorded in offered items.
uint64_t ActivationEpoch(const ProcessInstance& instance, NodeId node);

class WorklistManager : public InstanceObserver {
 public:
  explicit WorklistManager(const OrgModel* org) : org_(org) {}

  // InstanceObserver:
  void OnNodeStateChange(const ProcessInstance& instance, NodeId node,
                         NodeState from, NodeState to) override;

  // Items currently offered to `user` (role membership filter).
  std::vector<WorkItem> OffersFor(UserId user) const;

  // All live (offered/claimed) items.
  std::vector<WorkItem> OpenItems() const;

  // Reserves an offered item for `user` (must hold the role). Returns
  // kNotFound for unknown ids — including items dropped by Resync because
  // their node vanished from the instance's schema.
  Status Claim(WorkItemId item, UserId user);

  // Reconciles the worklist with engine truth after a state rewrite that
  // bypassed instance events (migration with bias cancellation restores
  // markings wholesale): revokes live items whose node vanished from the
  // instance's schema or is no longer Activated — dropping them from the
  // map, so a later Claim gets kNotFound — and offers Activated
  // role-carrying activities that have no live item. `instances` is the
  // complete set of live instances; items of absent instances are revoked.
  void Resync(const std::vector<const ProcessInstance*>& instances);

  const std::map<WorkItemId, WorkItem>& items() const { return items_; }

  size_t offered_count() const;
  size_t revoked_count() const { return revoked_count_; }

 private:
  WorkItem* LiveItemFor(InstanceId instance, NodeId node);
  // Offers `node` (no-op when a live item already exists).
  void Offer(const ProcessInstance& instance, NodeId node, RoleId role);

  const OrgModel* org_;
  std::map<WorkItemId, WorkItem> items_;
  uint64_t next_item_ = 1;
  size_t revoked_count_ = 0;
};

}  // namespace adept

#endif  // ADEPT_ORG_WORKLIST_H_
