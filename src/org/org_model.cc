#include "org/org_model.h"

namespace adept {

Result<RoleId> OrgModel::AddRole(const std::string& name) {
  for (const auto& [id, existing] : roles_) {
    if (existing == name) return Status::AlreadyExists("role exists: " + name);
  }
  RoleId id(next_role_++);
  roles_.emplace(id, name);
  return id;
}

Result<UserId> OrgModel::AddUser(const std::string& name) {
  for (const auto& [id, user] : users_) {
    if (user.name == name) return Status::AlreadyExists("user exists: " + name);
  }
  UserId id(next_user_++);
  users_.emplace(id, User{name, {}});
  return id;
}

Status OrgModel::AssignRole(UserId user, RoleId role) {
  auto it = users_.find(user);
  if (it == users_.end()) return Status::NotFound("no such user");
  if (roles_.count(role) == 0) return Status::NotFound("no such role");
  it->second.roles.insert(role);
  return Status::OK();
}

Status OrgModel::RevokeRole(UserId user, RoleId role) {
  auto it = users_.find(user);
  if (it == users_.end()) return Status::NotFound("no such user");
  if (it->second.roles.erase(role) == 0) {
    return Status::NotFound("user does not hold the role");
  }
  return Status::OK();
}

bool OrgModel::UserHasRole(UserId user, RoleId role) const {
  auto it = users_.find(user);
  return it != users_.end() && it->second.roles.count(role) > 0;
}

std::vector<UserId> OrgModel::UsersInRole(RoleId role) const {
  std::vector<UserId> out;
  for (const auto& [id, user] : users_) {
    if (user.roles.count(role) > 0) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<RoleId> OrgModel::RolesOf(UserId user) const {
  auto it = users_.find(user);
  if (it == users_.end()) return {};
  std::vector<RoleId> out(it->second.roles.begin(), it->second.roles.end());
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::string> OrgModel::UserName(UserId user) const {
  auto it = users_.find(user);
  if (it == users_.end()) return Status::NotFound("no such user");
  return it->second.name;
}

Result<std::string> OrgModel::RoleName(RoleId role) const {
  auto it = roles_.find(role);
  if (it == roles_.end()) return Status::NotFound("no such role");
  return it->second;
}

Result<RoleId> OrgModel::FindRole(const std::string& name) const {
  for (const auto& [id, existing] : roles_) {
    if (existing == name) return id;
  }
  return Status::NotFound("no such role: " + name);
}

Result<UserId> OrgModel::FindUser(const std::string& name) const {
  for (const auto& [id, user] : users_) {
    if (user.name == name) return id;
  }
  return Status::NotFound("no such user: " + name);
}

}  // namespace adept
