#include "org/org_model.h"

namespace adept {

Result<RoleId> OrgModel::AddRole(const std::string& name) {
  for (const auto& [id, existing] : roles_) {
    if (existing == name) return Status::AlreadyExists("role exists: " + name);
  }
  RoleId id(next_role_++);
  roles_.emplace(id, name);
  return id;
}

Result<UserId> OrgModel::AddUser(const std::string& name) {
  for (const auto& [id, user] : users_) {
    if (user.name == name) return Status::AlreadyExists("user exists: " + name);
  }
  UserId id(next_user_++);
  users_.emplace(id, User{name, {}});
  return id;
}

Status OrgModel::AssignRole(UserId user, RoleId role) {
  auto it = users_.find(user);
  if (it == users_.end()) return Status::NotFound("no such user");
  if (roles_.count(role) == 0) return Status::NotFound("no such role");
  it->second.roles.insert(role);
  return Status::OK();
}

Status OrgModel::RevokeRole(UserId user, RoleId role) {
  auto it = users_.find(user);
  if (it == users_.end()) return Status::NotFound("no such user");
  if (it->second.roles.erase(role) == 0) {
    return Status::NotFound("user does not hold the role");
  }
  return Status::OK();
}

bool OrgModel::UserHasRole(UserId user, RoleId role) const {
  auto it = users_.find(user);
  return it != users_.end() && it->second.roles.count(role) > 0;
}

std::vector<UserId> OrgModel::UsersInRole(RoleId role) const {
  std::vector<UserId> out;
  for (const auto& [id, user] : users_) {
    if (user.roles.count(role) > 0) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<RoleId> OrgModel::RolesOf(UserId user) const {
  auto it = users_.find(user);
  if (it == users_.end()) return {};
  std::vector<RoleId> out(it->second.roles.begin(), it->second.roles.end());
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::string> OrgModel::UserName(UserId user) const {
  auto it = users_.find(user);
  if (it == users_.end()) return Status::NotFound("no such user");
  return it->second.name;
}

Result<std::string> OrgModel::RoleName(RoleId role) const {
  auto it = roles_.find(role);
  if (it == roles_.end()) return Status::NotFound("no such role");
  return it->second;
}

Result<RoleId> OrgModel::FindRole(const std::string& name) const {
  for (const auto& [id, existing] : roles_) {
    if (existing == name) return id;
  }
  return Status::NotFound("no such role: " + name);
}

Result<UserId> OrgModel::FindUser(const std::string& name) const {
  for (const auto& [id, user] : users_) {
    if (user.name == name) return id;
  }
  return Status::NotFound("no such user: " + name);
}

JsonValue OrgModel::ToJson() const {
  JsonValue roles = JsonValue::MakeArray();
  for (const auto& [id, name] : roles_) {
    JsonValue rj = JsonValue::MakeObject();
    rj.Set("id", JsonValue(id.value()));
    rj.Set("name", JsonValue(name));
    roles.Append(std::move(rj));
  }
  JsonValue users = JsonValue::MakeArray();
  for (const auto& [id, user] : users_) {
    JsonValue uj = JsonValue::MakeObject();
    uj.Set("id", JsonValue(id.value()));
    uj.Set("name", JsonValue(user.name));
    JsonValue assigned = JsonValue::MakeArray();
    for (RoleId role : user.roles) assigned.Append(JsonValue(role.value()));
    uj.Set("roles", std::move(assigned));
    users.Append(std::move(uj));
  }
  JsonValue j = JsonValue::MakeObject();
  j.Set("roles", std::move(roles));
  j.Set("users", std::move(users));
  j.Set("next_user", JsonValue(next_user_));
  j.Set("next_role", JsonValue(next_role_));
  return j;
}

Status OrgModel::LoadFromJson(const JsonValue& json) {
  if (!users_.empty() || !roles_.empty()) {
    return Status::FailedPrecondition("org model is not empty");
  }
  if (!json.is_object()) return Status::Corruption("org json malformed");
  for (const JsonValue& rj : json.Get("roles").as_array()) {
    RoleId id(static_cast<uint32_t>(rj.Get("id").as_int()));
    roles_.emplace(id, rj.Get("name").as_string());
    next_role_ = std::max(next_role_, id.value() + 1);
  }
  for (const JsonValue& uj : json.Get("users").as_array()) {
    UserId id(static_cast<uint32_t>(uj.Get("id").as_int()));
    User user;
    user.name = uj.Get("name").as_string();
    for (const JsonValue& rj : uj.Get("roles").as_array()) {
      RoleId role(static_cast<uint32_t>(rj.as_int()));
      if (roles_.count(role) == 0) {
        return Status::Corruption("org json assigns an unknown role");
      }
      user.roles.insert(role);
    }
    users_.emplace(id, std::move(user));
    next_user_ = std::max(next_user_, id.value() + 1);
  }
  next_user_ = std::max(
      next_user_, static_cast<uint32_t>(json.Get("next_user").as_int()));
  next_role_ = std::max(
      next_role_, static_cast<uint32_t>(json.Get("next_role").as_int()));
  return Status::OK();
}

}  // namespace adept
