// Minimal organizational model: users, roles, staff assignment.
//
// ADEPT2 activities carry a staff-assignment role (Node::role); the
// worklist manager offers activated activities to the users holding that
// role. This module is deliberately small — enough to make the examples'
// worklists realistic and to test revocation on dynamic changes.

#ifndef ADEPT_ORG_ORG_MODEL_H_
#define ADEPT_ORG_ORG_MODEL_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "common/json.h"
#include "common/status.h"

namespace adept {

class OrgModel {
 public:
  Result<RoleId> AddRole(const std::string& name);
  Result<UserId> AddUser(const std::string& name);

  Status AssignRole(UserId user, RoleId role);
  Status RevokeRole(UserId user, RoleId role);

  bool UserHasRole(UserId user, RoleId role) const;
  std::vector<UserId> UsersInRole(RoleId role) const;
  std::vector<RoleId> RolesOf(UserId user) const;

  Result<std::string> UserName(UserId user) const;
  Result<std::string> RoleName(RoleId role) const;
  Result<RoleId> FindRole(const std::string& name) const;
  Result<UserId> FindUser(const std::string& name) const;

  size_t user_count() const { return users_.size(); }
  size_t role_count() const { return roles_.size(); }

  // Durability round trip (cluster recovery persists the org model to
  // "<wal>.org" at checkpoint time): serializes roles, users, assignments,
  // and the id counters, so restored ids are bit-identical to the
  // originals. LoadFromJson requires an empty model.
  JsonValue ToJson() const;
  Status LoadFromJson(const JsonValue& json);

 private:
  struct User {
    std::string name;
    std::unordered_set<RoleId> roles;
  };

  std::unordered_map<UserId, User> users_;
  std::unordered_map<RoleId, std::string> roles_;
  uint32_t next_user_ = 1;
  uint32_t next_role_ = 1;
};

}  // namespace adept

#endif  // ADEPT_ORG_ORG_MODEL_H_
