#include "org/worklist.h"

namespace adept {

const char* WorkItemStateToString(WorkItemState s) {
  switch (s) {
    case WorkItemState::kOffered:
      return "offered";
    case WorkItemState::kClaimed:
      return "claimed";
    case WorkItemState::kStarted:
      return "started";
    case WorkItemState::kRevoked:
      return "revoked";
  }
  return "?";
}

WorkItem* WorklistManager::LiveItemFor(InstanceId instance, NodeId node) {
  for (auto& [_, item] : items_) {
    if (item.instance == instance && item.node == node &&
        (item.state == WorkItemState::kOffered ||
         item.state == WorkItemState::kClaimed)) {
      return &item;
    }
  }
  return nullptr;
}

void WorklistManager::OnNodeStateChange(const ProcessInstance& instance,
                                        NodeId node, NodeState from,
                                        NodeState to) {
  (void)from;
  const Node* n = instance.schema().FindNode(node);
  if (to == NodeState::kActivated) {
    if (n == nullptr || n->type != NodeType::kActivity || !n->role.valid()) {
      return;
    }
    if (LiveItemFor(instance.id(), node) != nullptr) return;  // already open
    WorkItem item;
    item.id = WorkItemId(next_item_++);
    item.instance = instance.id();
    item.node = node;
    item.role = n->role;
    items_.emplace(item.id, item);
    return;
  }
  // Leaving Activated: close any live item.
  WorkItem* live = LiveItemFor(instance.id(), node);
  if (live == nullptr) return;
  if (to == NodeState::kRunning) {
    live->state = WorkItemState::kStarted;
  } else {
    live->state = WorkItemState::kRevoked;
    ++revoked_count_;
  }
}

std::vector<WorkItem> WorklistManager::OffersFor(UserId user) const {
  std::vector<WorkItem> out;
  for (const auto& [_, item] : items_) {
    if (item.state == WorkItemState::kOffered &&
        org_->UserHasRole(user, item.role)) {
      out.push_back(item);
    }
  }
  return out;
}

std::vector<WorkItem> WorklistManager::OpenItems() const {
  std::vector<WorkItem> out;
  for (const auto& [_, item] : items_) {
    if (item.state == WorkItemState::kOffered ||
        item.state == WorkItemState::kClaimed) {
      out.push_back(item);
    }
  }
  return out;
}

Status WorklistManager::Claim(WorkItemId item_id, UserId user) {
  auto it = items_.find(item_id);
  if (it == items_.end()) return Status::NotFound("no such work item");
  WorkItem& item = it->second;
  if (item.state != WorkItemState::kOffered) {
    return Status::FailedPrecondition("work item is not offered");
  }
  if (!org_->UserHasRole(user, item.role)) {
    return Status::FailedPrecondition("user does not hold the required role");
  }
  item.state = WorkItemState::kClaimed;
  item.claimed_by = user;
  return Status::OK();
}

size_t WorklistManager::offered_count() const {
  size_t n = 0;
  for (const auto& [_, item] : items_) {
    if (item.state == WorkItemState::kOffered) ++n;
  }
  return n;
}

}  // namespace adept
