#include "org/worklist.h"

namespace adept {

const Node* OfferableActivity(const SchemaView& schema, NodeId node) {
  const Node* n = schema.FindNode(node);
  if (n == nullptr || n->type != NodeType::kActivity || !n->role.valid()) {
    return nullptr;
  }
  return n;
}

uint64_t ActivationEpoch(const ProcessInstance& instance, NodeId node) {
  return instance.completed_runs(node);
}

const char* WorkItemStateToString(WorkItemState s) {
  switch (s) {
    case WorkItemState::kOffered:
      return "offered";
    case WorkItemState::kClaimed:
      return "claimed";
    case WorkItemState::kStarted:
      return "started";
    case WorkItemState::kRevoked:
      return "revoked";
  }
  return "?";
}

WorkItem* WorklistManager::LiveItemFor(InstanceId instance, NodeId node) {
  for (auto& [_, item] : items_) {
    if (item.instance == instance && item.node == node &&
        (item.state == WorkItemState::kOffered ||
         item.state == WorkItemState::kClaimed)) {
      return &item;
    }
  }
  return nullptr;
}

void WorklistManager::Offer(const ProcessInstance& instance, NodeId node,
                            RoleId role) {
  if (LiveItemFor(instance.id(), node) != nullptr) return;  // already open
  WorkItem item;
  item.id = WorkItemId(next_item_++);
  item.instance = instance.id();
  item.node = node;
  item.role = role;
  item.epoch = ActivationEpoch(instance, node);
  items_.emplace(item.id, item);
}

void WorklistManager::OnNodeStateChange(const ProcessInstance& instance,
                                        NodeId node, NodeState from,
                                        NodeState to) {
  (void)from;
  if (to == NodeState::kActivated) {
    const Node* n = OfferableActivity(instance.schema(), node);
    if (n != nullptr) Offer(instance, node, n->role);
    return;
  }
  // Leaving Activated: close any live item.
  WorkItem* live = LiveItemFor(instance.id(), node);
  if (live == nullptr) return;
  if (to == NodeState::kRunning) {
    live->state = WorkItemState::kStarted;
  } else {
    live->state = WorkItemState::kRevoked;
    ++revoked_count_;
  }
}

std::vector<WorkItem> WorklistManager::OffersFor(UserId user) const {
  std::vector<WorkItem> out;
  for (const auto& [_, item] : items_) {
    if (item.state == WorkItemState::kOffered &&
        org_->UserHasRole(user, item.role)) {
      out.push_back(item);
    }
  }
  return out;
}

std::vector<WorkItem> WorklistManager::OpenItems() const {
  std::vector<WorkItem> out;
  for (const auto& [_, item] : items_) {
    if (item.state == WorkItemState::kOffered ||
        item.state == WorkItemState::kClaimed) {
      out.push_back(item);
    }
  }
  return out;
}

void WorklistManager::Resync(
    const std::vector<const ProcessInstance*>& instances) {
  std::map<InstanceId, const ProcessInstance*> by_id;
  for (const ProcessInstance* instance : instances) {
    if (instance != nullptr) by_id.emplace(instance->id(), instance);
  }
  // 1. Revoke live items that no longer correspond to an Activated node of
  // a known schema entity. Dropped from the map entirely: a claim ticket
  // for a vanished node must fail kNotFound, not "not offered".
  for (auto it = items_.begin(); it != items_.end();) {
    const WorkItem& item = it->second;
    if (item.state != WorkItemState::kOffered &&
        item.state != WorkItemState::kClaimed) {
      ++it;
      continue;
    }
    auto found = by_id.find(item.instance);
    const ProcessInstance* instance =
        found == by_id.end() ? nullptr : found->second;
    bool stale = instance == nullptr ||
                 instance->schema().FindNode(item.node) == nullptr ||
                 instance->node_state(item.node) != NodeState::kActivated;
    if (stale) {
      ++revoked_count_;
      it = items_.erase(it);
    } else {
      ++it;
    }
  }
  // 2. Offer Activated role-carrying activities that have no live item
  // (a bias-cancellation remap re-keys marking entries without events).
  for (const auto& [_, instance] : by_id) {
    for (const auto& [node, state] : instance->marking().node_states()) {
      if (state != NodeState::kActivated) continue;
      const Node* n = OfferableActivity(instance->schema(), node);
      if (n != nullptr) Offer(*instance, node, n->role);
    }
  }
}

Status WorklistManager::Claim(WorkItemId item_id, UserId user) {
  auto it = items_.find(item_id);
  if (it == items_.end()) return Status::NotFound("no such work item");
  WorkItem& item = it->second;
  if (item.state != WorkItemState::kOffered) {
    return Status::FailedPrecondition("work item is not offered");
  }
  if (!org_->UserHasRole(user, item.role)) {
    return Status::FailedPrecondition("user does not hold the required role");
  }
  item.state = WorkItemState::kClaimed;
  item.claimed_by = user;
  return Status::OK();
}

size_t WorklistManager::offered_count() const {
  size_t n = 0;
  for (const auto& [_, item] : items_) {
    if (item.state == WorkItemState::kOffered) ++n;
  }
  return n;
}

}  // namespace adept
