// Ad-hoc instance changes (paper Sec. 2, "Ad-hoc changes of single
// instances").
//
// ApplyAdHocChange is the complete pipeline for deviating a single running
// instance from its type schema:
//   1. state pre-conditions (compliance/conditions.h) on the current marking
//   2. structural application + re-verification of the combined bias
//      (InstanceStore::AddBias -> Delta::ApplyToSchema -> verifier)
//   3. representation update (substitution block / full copy per strategy)
//   4. schema adoption + automatic marking re-evaluation (state adaptation,
//      e.g. demoting activities that a new sync edge now gates)
//   5. trace record of the change
// A failure in any step leaves the instance untouched.

#ifndef ADEPT_COMPLIANCE_ADHOC_H_
#define ADEPT_COMPLIANCE_ADHOC_H_

#include "change/delta.h"
#include "runtime/instance.h"
#include "storage/instance_store.h"

namespace adept {

// `delta`'s ops are consumed (they get pinned instance-range ids).
// Error contract:
//   kNotCompliant        a state pre-condition is violated
//   kFailedPrecondition  an op does not apply structurally
//   kVerificationFailed  the changed schema breaks a buildtime guarantee
Status ApplyAdHocChange(ProcessInstance& instance, InstanceStore& store,
                        Delta delta);

}  // namespace adept

#endif  // ADEPT_COMPLIANCE_ADHOC_H_
