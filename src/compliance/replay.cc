#include "compliance/replay.h"

#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"

namespace adept {

namespace {

ReplayResult Fail(std::string reason) {
  ReplayResult r;
  r.compliant = false;
  r.reason = std::move(reason);
  return r;
}

}  // namespace

ReplayResult CheckComplianceByReplay(
    const ProcessInstance& instance, std::shared_ptr<const SchemaView> target) {
  if (target == nullptr) return Fail("no target schema");

  // Index recorded data writes by trace sequence for value lookup.
  std::unordered_map<int64_t, std::pair<DataId, DataValue>> writes_by_seq;
  instance.data().ForEachElement(
      [&](DataId data_id, const std::vector<DataContext::Version>& versions) {
        for (const auto& v : versions) {
          writes_by_seq[v.sequence] = {data_id, v.value};
        }
      });

  // Surviving events after loop reduction.
  std::vector<TraceEvent> reduced = instance.trace().Reduced();
  std::unordered_set<int64_t> surviving;
  for (const TraceEvent& e : reduced) surviving.insert(e.sequence);

  ProcessInstance shadow(instance.id(), target, SchemaId::Invalid());

  // Pending parameter writes per activity (applied at its completion).
  std::unordered_map<NodeId, std::vector<ProcessInstance::DataWrite>> pending;

  for (const TraceEvent& event : instance.trace().events()) {
    if (surviving.count(event.sequence) == 0) {
      // Event erased by loop reduction. Its *data effects* still shape the
      // current iteration (values survive resets), so seed them directly.
      if (event.kind == TraceEventKind::kDataWrite) {
        auto it = writes_by_seq.find(event.sequence);
        if (it != writes_by_seq.end()) {
          shadow.mutable_data().Write(it->second.first, it->second.second,
                                      event.node, event.sequence);
          Status st = shadow.PropagateMarkings();
          if (!st.ok()) return Fail("seeding dropped write: " + st.message());
        }
      }
      continue;
    }

    switch (event.kind) {
      case TraceEventKind::kInstanceStarted: {
        Status st = shadow.Start();
        if (!st.ok()) return Fail("start: " + st.message());
        break;
      }
      case TraceEventKind::kActivityStarted: {
        if (target->FindNode(event.node) == nullptr) {
          return Fail(StrFormat(
              "activity n%u was already started but does not exist in the "
              "target schema",
              event.node.value()));
        }
        Status st = shadow.StartActivity(event.node);
        if (!st.ok()) {
          return Fail(StrFormat("replaying start of n%u: %s",
                                event.node.value(), st.message().c_str()));
        }
        break;
      }
      case TraceEventKind::kDataWrite: {
        auto it = writes_by_seq.find(event.sequence);
        if (it == writes_by_seq.end()) {
          return Fail("trace references a data write without stored value");
        }
        if (target->FindData(it->second.first) == nullptr) {
          return Fail(StrFormat(
              "recorded write of d%u cannot be replayed: element missing in "
              "target schema",
              it->second.first.value()));
        }
        pending[event.node].push_back({it->second.first, it->second.second});
        break;
      }
      case TraceEventKind::kActivityCompleted: {
        auto writes = pending.find(event.node);
        Status st = shadow.CompleteActivity(
            event.node, writes != pending.end()
                            ? writes->second
                            : std::vector<ProcessInstance::DataWrite>{});
        if (writes != pending.end()) pending.erase(writes);
        if (!st.ok()) {
          return Fail(StrFormat("replaying completion of n%u: %s",
                                event.node.value(), st.message().c_str()));
        }
        break;
      }
      case TraceEventKind::kActivityFailed: {
        Status st = shadow.FailActivity(event.node, event.detail);
        if (!st.ok()) return Fail("replaying failure: " + st.message());
        break;
      }
      case TraceEventKind::kActivityRetried: {
        Status st = shadow.RetryActivity(event.node);
        if (!st.ok()) return Fail("replaying retry: " + st.message());
        break;
      }
      case TraceEventKind::kBranchChosen: {
        const Node* split = target->FindNode(event.node);
        if (split == nullptr) {
          // The decided split does not exist in the target; tolerated as
          // long as no started activity depended on it (their replays would
          // fail on their own).
          break;
        }
        NodeState state = shadow.node_state(event.node);
        if (!IsFinalNodeState(state)) {
          Status st = shadow.SelectBranch(event.node, event.branch_value);
          if (!st.ok()) {
            return Fail(StrFormat("replaying decision at n%u: %s",
                                  event.node.value(), st.message().c_str()));
          }
        } else {
          // Already auto-decided from replayed data; decisions must agree.
          bool matches = false;
          target->VisitOutEdges(event.node, [&](const Edge& e) {
            if (e.type == EdgeType::kControl &&
                shadow.edge_state(e.id) == EdgeState::kTrueSignaled &&
                e.branch_value == event.branch_value) {
              matches = true;
            }
          });
          if (!matches) {
            return Fail(StrFormat(
                "XOR decision at n%u diverges between trace and target "
                "schema",
                event.node.value()));
          }
        }
        break;
      }
      case TraceEventKind::kActivitySkipped:
      case TraceEventKind::kLoopReset:
      case TraceEventKind::kAdHocChange:
      case TraceEventKind::kMigrated:
        break;  // derived / informational
    }
  }

  ReplayResult result;
  result.compliant = true;
  result.adapted_marking = shadow.marking();
  // Suspension is not traced (it carries no causal order); carry it over.
  for (const auto& [node, state] : instance.marking().node_states()) {
    if (state == NodeState::kSuspended &&
        result.adapted_marking.node(node) == NodeState::kRunning) {
      result.adapted_marking.set_node(node, NodeState::kSuspended);
    }
  }
  return result;
}

}  // namespace adept
