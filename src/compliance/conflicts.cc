#include "compliance/conflicts.h"

#include <algorithm>
#include <set>
#include <unordered_set>

namespace adept {

const char* OverlapKindToString(OverlapKind kind) {
  switch (kind) {
    case OverlapKind::kDisjoint:
      return "disjoint";
    case OverlapKind::kEquivalent:
      return "equivalent";
    case OverlapKind::kSubsumesInstance:
      return "subsumes-instance";
    case OverlapKind::kSubsumedByInstance:
      return "subsumed-by-instance";
    case OverlapKind::kPartial:
      return "partially-overlapping";
  }
  return "?";
}

OverlapKind AnalyzeOverlap(const Delta& type_change, const Delta& bias) {
  std::multiset<std::string> t_sigs, i_sigs;
  for (const std::string& s : type_change.Signatures()) t_sigs.insert(s);
  for (const std::string& s : bias.Signatures()) i_sigs.insert(s);

  std::vector<std::string> common;
  std::set_intersection(t_sigs.begin(), t_sigs.end(), i_sigs.begin(),
                        i_sigs.end(), std::back_inserter(common));
  if (common.empty()) return OverlapKind::kDisjoint;
  if (common.size() == t_sigs.size() && common.size() == i_sigs.size()) {
    return OverlapKind::kEquivalent;
  }
  if (common.size() == i_sigs.size()) return OverlapKind::kSubsumesInstance;
  if (common.size() == t_sigs.size()) return OverlapKind::kSubsumedByInstance;
  return OverlapKind::kPartial;
}

Result<IdMapping> BuildBiasCancellationMapping(const Delta& type_change,
                                               const Delta& bias) {
  IdMapping mapping;
  // Pair each bias op with the first unconsumed, signature-equal type op.
  // Signatures are the delta-level *symbolic* ones, so references to nodes
  // created by sibling ops match across differently pinned deltas.
  std::vector<std::string> type_sigs = type_change.Signatures();
  std::vector<std::string> bias_sigs = bias.Signatures();
  std::vector<bool> consumed(type_change.ops().size(), false);
  for (size_t b = 0; b < bias.ops().size(); ++b) {
    const auto& bias_op = bias.ops()[b];
    const ChangeOp* partner = nullptr;
    for (size_t i = 0; i < type_change.ops().size(); ++i) {
      if (consumed[i]) continue;
      if (type_sigs[i] == bias_sigs[b]) {
        consumed[i] = true;
        partner = type_change.ops()[i].get();
        break;
      }
    }
    if (partner == nullptr) {
      return Status::FailedPrecondition(
          "bias op without matching type-change op: " + bias_op->Describe());
    }
    // Pair pinned ids slot by slot. JSON exposes all three pin vectors.
    JsonValue bias_json = bias_op->ToJson();
    JsonValue type_json = partner->ToJson();
    const JsonValue& bp = bias_json.Get("pins");
    const JsonValue& tp = type_json.Get("pins");
    auto pair_ids = [&](const char* key, auto& out, auto make_id) -> Status {
      const auto& b_arr = bp.Get(key).as_array();
      const auto& t_arr = tp.Get(key).as_array();
      if (b_arr.size() != t_arr.size()) {
        return Status::FailedPrecondition(
            "pinned id arity mismatch between equivalent ops");
      }
      for (size_t i = 0; i < b_arr.size(); ++i) {
        out.emplace(make_id(static_cast<uint32_t>(b_arr[i].as_int())),
                    make_id(static_cast<uint32_t>(t_arr[i].as_int())));
      }
      return Status::OK();
    };
    ADEPT_RETURN_IF_ERROR(pair_ids("nodes", mapping.nodes,
                                   [](uint32_t v) { return NodeId(v); }));
    ADEPT_RETURN_IF_ERROR(pair_ids("edges", mapping.edges,
                                   [](uint32_t v) { return EdgeId(v); }));
    ADEPT_RETURN_IF_ERROR(
        pair_ids("data", mapping.data, [](uint32_t v) { return DataId(v); }));
  }
  return mapping;
}

}  // namespace adept
