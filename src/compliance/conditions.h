// Per-operation compliance conditions (paper Fig. 1, bottom).
//
// ADEPT2's general correctness criterion (relaxed trace equivalence) is
// expensive to evaluate directly; "in order to enable efficient compliance
// checks, for each change operation we provide precise and easy to
// implement compliance conditions". These predicates look only at the
// instance's current marking (plus, for sync edges, the order witnessed by
// the trace) and decide whether the operation may be applied to the running
// instance — the same predicate powers both ad-hoc instance changes and
// type-change propagation.
//
// Conditions implemented (NS = node state; "started" = Running, Suspended,
// Failed, or Completed):
//   serialInsert(X, A->B)      NS(B) not started, or NS(B) = Skipped with no
//                              started successor behind it
//   parallelInsert(X, [F..T])  the node after T not started (same clause)
//   branchInsert               always compliant (new branch is dead or open)
//   deleteActivity(X)          NS(X) in {NotActivated, Activated, Skipped}
//   moveActivity(X, A->B)      delete condition for X + insert condition at B
//   insertSyncEdge(n1 -> n2)   NS(n2) not started, or the trace witnesses
//                              n1 completed/skipped before n2 started
//   deleteSyncEdge             always compliant
//   addDataElement             always compliant
//   addDataEdge(n, d)          n not started (optional reads: always)
//   deleteDataEdge(n, d)       n not started
//   replaceActivityImpl(n)     n not started

#ifndef ADEPT_COMPLIANCE_CONDITIONS_H_
#define ADEPT_COMPLIANCE_CONDITIONS_H_

#include <string>
#include <unordered_map>
#include <unordered_set>

#include "change/delta.h"
#include "runtime/instance.h"

namespace adept {

struct ConditionResult {
  bool compliant = true;
  std::string reason;  // first violated condition

  static ConditionResult Ok() { return {}; }
  static ConditionResult Fail(std::string why) {
    return {false, std::move(why)};
  }
};

// Context for resolving node references of a delta's operations:
//   * created_nodes: ids the delta itself creates (pinned insert ids); they
//     do not exist in the instance schema yet and behave like fresh
//     NotActivated nodes (e.g. the source of a sync edge to a node inserted
//     by an earlier op of the same delta — Fig. 1's Delta-T).
//   * aliases: id translation applied before marking lookups; used during
//     bias cancellation, where a type-level pinned id corresponds to the
//     instance's (bias-pinned) twin node.
struct ConditionContext {
  std::unordered_set<NodeId> created_nodes;
  std::unordered_map<NodeId, NodeId> aliases;

  NodeId Resolve(NodeId id) const {
    auto it = aliases.find(id);
    return it == aliases.end() ? id : it->second;
  }
  bool IsCreated(NodeId id) const { return created_nodes.count(id) > 0; }

  // Context for a self-contained delta: everything it pins counts as
  // created.
  static ConditionContext ForDelta(const Delta& delta);
};

// Checks one operation's state condition against the instance's current
// marking/trace. Operations referencing nodes absent from the instance's
// execution schema (and not covered by the context) are non-compliant —
// the referenced entity was removed by a concurrent change.
ConditionResult CheckOpStateCondition(const ProcessInstance& instance,
                                      const ChangeOp& op,
                                      const ConditionContext& ctx = {});

// All operations of the delta, in order; first violation wins. The context
// defaults to ConditionContext::ForDelta(delta).
ConditionResult CheckStateConditions(const ProcessInstance& instance,
                                     const Delta& delta);
ConditionResult CheckStateConditions(const ProcessInstance& instance,
                                     const Delta& delta,
                                     const ConditionContext& ctx);

}  // namespace adept

#endif  // ADEPT_COMPLIANCE_CONDITIONS_H_
