// Trace-replay compliance: ADEPT2's general correctness criterion.
//
// An instance I is compliant with a target schema S' iff its *reduced*
// execution trace (relaxed trace equivalence: loop iterations other than
// the latest are projected away) can be replayed on S'. The replay also
// yields the correctly adapted marking on S' for free, so this module
// doubles as the oracle for the optimized per-operation conditions and as
// an alternative state-adaptation procedure.
//
// The checker drives a shadow instance through the real execution engine,
// so every marking rule (sync gating, dead paths, mandatory parameters,
// XOR decisions) is enforced by construction rather than re-implemented.

#ifndef ADEPT_COMPLIANCE_REPLAY_H_
#define ADEPT_COMPLIANCE_REPLAY_H_

#include <memory>
#include <string>

#include "model/schema_view.h"
#include "runtime/instance.h"

namespace adept {

struct ReplayResult {
  bool compliant = false;
  std::string reason;       // first replay violation when !compliant
  Marking adapted_marking;  // shadow marking after replay (compliant only)
};

// Replays `instance`'s reduced trace on `target`.
ReplayResult CheckComplianceByReplay(const ProcessInstance& instance,
                                     std::shared_ptr<const SchemaView> target);

}  // namespace adept

#endif  // ADEPT_COMPLIANCE_REPLAY_H_
