// MigrationManager: propagation of process type changes to running
// instances (paper Sec. 2, "Process type changes and change propagation",
// Figs. 1 and 3).
//
// For a type change S -> S' (the repository-stored Delta-T), every running
// instance of S is classified and, where correct, migrated on-the-fly:
//
//   unbiased instance:
//     compliance check (optimized per-op conditions, or the general replay
//     criterion) -> adopt S' + automatic state adaptation, or stay on S
//     with a state-related conflict report
//
//   biased instance (prior ad-hoc change Delta-I):
//     semantic overlap analysis Delta-T vs Delta-I
//       disjoint     -> re-verify S' + Delta-I (structural conflicts such
//                       as deadlock-causing cycles are caught here), check
//                       state conditions, then rebase the bias onto S'
//       equivalent / type-change-subsumes-bias
//                    -> the ad-hoc change anticipated the type change: the
//                       bias is cancelled, entity ids are remapped onto
//                       S''s, and the instance continues unbiased on S'
//       otherwise    -> semantic conflict, stays on S
//
// Every instance that stays behind is listed in the MigrationReport with
// its conflict class and reason — the report of Fig. 3.

#ifndef ADEPT_COMPLIANCE_MIGRATION_H_
#define ADEPT_COMPLIANCE_MIGRATION_H_

#include <string>
#include <vector>

#include "change/delta.h"
#include "runtime/engine.h"
#include "storage/instance_store.h"
#include "storage/schema_repository.h"

namespace adept {

enum class MigrationOutcome {
  kMigrated = 0,        // unbiased, now on the new version
  kMigratedBiased,      // biased, bias rebased onto the new version
  kBiasCancelled,       // biased, bias was equivalent/subsumed -> unbiased
  kStateConflict,       // not compliant in its current marking
  kStructuralConflict,  // bias + type change break a buildtime guarantee
  kSemanticConflict,    // overlapping changes need manual resolution
  kFinishedSkipped,     // completed instances stay on their version
  kNotOnSourceVersion,  // not an instance of the source schema
  kError,               // internal inconsistency (should not happen)
};

const char* MigrationOutcomeToString(MigrationOutcome outcome);

struct InstanceMigrationResult {
  InstanceId id;
  MigrationOutcome outcome = MigrationOutcome::kError;
  bool was_biased = false;
  std::string detail;
};

struct MigrationReport {
  std::string type_name;
  SchemaId from;
  SchemaId to;
  int from_version = 0;
  int to_version = 0;
  std::vector<InstanceMigrationResult> results;

  size_t Count(MigrationOutcome outcome) const;
  // kMigrated + kMigratedBiased + kBiasCancelled.
  size_t MigratedTotal() const;
  std::string Summary() const;
};

struct MigrationOptions {
  // Use the general replay criterion instead of the optimized conditions.
  bool use_replay_checker = false;
  // After migrating, cross-check the adapted marking against the replay
  // oracle; mismatches yield kError (testing/diagnostics).
  bool verify_adaptation_with_replay = false;
  // Classify only; do not modify instances ("lazy" migration planning).
  bool dry_run = false;
};

class MigrationManager {
 public:
  MigrationManager(Engine* engine, SchemaRepository* repository,
                   InstanceStore* store)
      : engine_(engine), repository_(repository), store_(store) {}

  // Migrates every registered instance currently based on `from` to `to`
  // (which must be the version derived from `from`).
  Result<MigrationReport> MigrateAll(SchemaId from, SchemaId to,
                                     const MigrationOptions& options = {});

  // Migrates a single instance (on-demand / lazy migration).
  Result<InstanceMigrationResult> MigrateOne(InstanceId id, SchemaId from,
                                             SchemaId to,
                                             const Delta& type_change,
                                             const MigrationOptions& options);

 private:
  Result<InstanceMigrationResult> MigrateUnbiased(
      ProcessInstance& instance, SchemaId to, const Delta& type_change,
      const MigrationOptions& options);
  Result<InstanceMigrationResult> MigrateBiased(
      ProcessInstance& instance, const InstanceStore::Record& record,
      SchemaId to, const Delta& type_change, const MigrationOptions& options);

  Engine* engine_;
  SchemaRepository* repository_;
  InstanceStore* store_;
};

}  // namespace adept

#endif  // ADEPT_COMPLIANCE_MIGRATION_H_
