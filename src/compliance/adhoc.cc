#include "compliance/adhoc.h"

#include "common/logging.h"
#include "compliance/conditions.h"
#include "verify/verifier.h"

namespace adept {

Status ApplyAdHocChange(ProcessInstance& instance, InstanceStore& store,
                        Delta delta) {
  if (delta.empty()) {
    return Status::InvalidArgument("empty ad-hoc change");
  }
  ConditionResult condition = CheckStateConditions(instance, delta);
  if (!condition.compliant) {
    return Status::NotCompliant(condition.reason);
  }
  std::string description = delta.Describe();
  ADEPT_ASSIGN_OR_RETURN(std::shared_ptr<const SchemaView> view,
                         store.AddBias(instance.id(), std::move(delta)));
  // Verification succeeded, but the combined schema may carry warnings
  // (races, naming); surface them instead of silently discarding. The full
  // report stays retrievable via InstanceStore::Get(id)->report.
  if (auto record = store.Get(instance.id()); record.ok()) {
    for (const auto& issue : (*record)->report.issues()) {
      if (issue.severity != VerifySeverity::kWarning) continue;
      ADEPT_LOG(kWarning) << "ad-hoc change on instance "
                          << instance.id().value() << ": ["
                          << VerifyRuleId(issue.rule) << "] " << issue.message;
    }
  }
  ADEPT_RETURN_IF_ERROR(instance.AdoptSchema(view, instance.schema_ref()));
  instance.set_biased(true);
  instance.mutable_trace().Append(
      {.kind = TraceEventKind::kAdHocChange, .detail = description});
  return Status::OK();
}

}  // namespace adept
