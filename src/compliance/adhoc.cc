#include "compliance/adhoc.h"

#include "compliance/conditions.h"

namespace adept {

Status ApplyAdHocChange(ProcessInstance& instance, InstanceStore& store,
                        Delta delta) {
  if (delta.empty()) {
    return Status::InvalidArgument("empty ad-hoc change");
  }
  ConditionResult condition = CheckStateConditions(instance, delta);
  if (!condition.compliant) {
    return Status::NotCompliant(condition.reason);
  }
  std::string description = delta.Describe();
  ADEPT_ASSIGN_OR_RETURN(std::shared_ptr<const SchemaView> view,
                         store.AddBias(instance.id(), std::move(delta)));
  ADEPT_RETURN_IF_ERROR(instance.AdoptSchema(view, instance.schema_ref()));
  instance.set_biased(true);
  instance.mutable_trace().Append(
      {.kind = TraceEventKind::kAdHocChange, .detail = description});
  return Status::OK();
}

}  // namespace adept
