#include "compliance/migration.h"

#include <set>
#include <sstream>

#include "common/string_util.h"
#include "compliance/conditions.h"
#include "compliance/conflicts.h"
#include "compliance/replay.h"

namespace adept {

namespace {

// Rewrites instance runtime state from bias-pinned ids onto the type
// change's pinned ids (bias cancellation).
void RemapInstanceState(ProcessInstance& instance, const IdMapping& mapping) {
  auto map_node = [&](NodeId id) {
    auto it = mapping.nodes.find(id);
    return it == mapping.nodes.end() ? id : it->second;
  };
  auto map_edge = [&](EdgeId id) {
    auto it = mapping.edges.find(id);
    return it == mapping.edges.end() ? id : it->second;
  };
  auto map_data = [&](DataId id) {
    auto it = mapping.data.find(id);
    return it == mapping.data.end() ? id : it->second;
  };

  Marking marking;
  for (const auto& [node, state] : instance.marking().node_states()) {
    marking.set_node(map_node(node), state);
  }
  for (const auto& [edge, state] : instance.marking().edge_states()) {
    marking.set_edge(map_edge(edge), state);
  }

  std::vector<TraceEvent> events = instance.trace().events();
  for (TraceEvent& e : events) {
    if (e.node.valid()) e.node = map_node(e.node);
    if (e.data.valid()) e.data = map_data(e.data);
    for (NodeId& n : e.reset_nodes) n = map_node(n);
  }
  ExecutionTrace trace;
  trace.Restore(std::move(events));

  DataContext data;
  instance.data().ForEachElement(
      [&](DataId id, const std::vector<DataContext::Version>& versions) {
        DataId mapped = map_data(id);
        for (const auto& v : versions) {
          data.Write(mapped, v.value, map_node(v.writer), v.sequence);
        }
      });

  PersistentMap<NodeId, int> loops;
  for (const auto& [node, count] : instance.loop_iterations()) {
    loops.Set(map_node(node), count);
  }

  PersistentMap<NodeId, int64_t> activated_since;
  for (const auto& [node, seq] : instance.activated_since()) {
    activated_since.Set(map_node(node), seq);
  }

  instance.RestoreState(std::move(marking), std::move(trace), std::move(data),
                        std::move(loops), instance.started(),
                        std::move(activated_since));
}

// Ops of `type_change` that have no signature-equal partner in `bias`
// (multiset semantics).
std::vector<const ChangeOp*> UnmatchedOps(const Delta& type_change,
                                          const Delta& bias) {
  std::multiset<std::string> bias_sigs;
  for (const auto& op : bias.ops()) bias_sigs.insert(op->Signature());
  std::vector<const ChangeOp*> out;
  for (const auto& op : type_change.ops()) {
    auto it = bias_sigs.find(op->Signature());
    if (it != bias_sigs.end()) {
      bias_sigs.erase(it);
    } else {
      out.push_back(op.get());
    }
  }
  return out;
}

bool MarkingsAgree(const Marking& a, const Marking& b) {
  return a.node_states() == b.node_states() &&
         a.edge_states() == b.edge_states();
}

}  // namespace

const char* MigrationOutcomeToString(MigrationOutcome outcome) {
  switch (outcome) {
    case MigrationOutcome::kMigrated:
      return "migrated";
    case MigrationOutcome::kMigratedBiased:
      return "migrated (bias kept)";
    case MigrationOutcome::kBiasCancelled:
      return "migrated (bias cancelled)";
    case MigrationOutcome::kStateConflict:
      return "state-related conflict";
    case MigrationOutcome::kStructuralConflict:
      return "structural conflict";
    case MigrationOutcome::kSemanticConflict:
      return "semantical conflict";
    case MigrationOutcome::kFinishedSkipped:
      return "finished (kept on old version)";
    case MigrationOutcome::kNotOnSourceVersion:
      return "not on source version";
    case MigrationOutcome::kError:
      return "internal error";
  }
  return "?";
}

size_t MigrationReport::Count(MigrationOutcome outcome) const {
  size_t n = 0;
  for (const auto& r : results) {
    if (r.outcome == outcome) ++n;
  }
  return n;
}

size_t MigrationReport::MigratedTotal() const {
  return Count(MigrationOutcome::kMigrated) +
         Count(MigrationOutcome::kMigratedBiased) +
         Count(MigrationOutcome::kBiasCancelled);
}

std::string MigrationReport::Summary() const {
  std::ostringstream os;
  os << "migration " << type_name << " V" << from_version << " -> V"
     << to_version << ": " << MigratedTotal() << "/" << results.size()
     << " migrated";
  size_t state = Count(MigrationOutcome::kStateConflict);
  size_t structural = Count(MigrationOutcome::kStructuralConflict);
  size_t semantic = Count(MigrationOutcome::kSemanticConflict);
  size_t finished = Count(MigrationOutcome::kFinishedSkipped);
  if (state > 0) os << ", " << state << " state conflicts";
  if (structural > 0) os << ", " << structural << " structural conflicts";
  if (semantic > 0) os << ", " << semantic << " semantical conflicts";
  if (finished > 0) os << ", " << finished << " finished";
  return os.str();
}

Result<MigrationReport> MigrationManager::MigrateAll(
    SchemaId from, SchemaId to, const MigrationOptions& options) {
  ADEPT_ASSIGN_OR_RETURN(SchemaId parent, repository_->ParentOf(to));
  if (parent != from) {
    return Status::FailedPrecondition(
        "target version is not derived from the source version");
  }
  ADEPT_ASSIGN_OR_RETURN(const Delta* type_change, repository_->DeltaFor(to));
  ADEPT_ASSIGN_OR_RETURN(std::shared_ptr<const ProcessSchema> from_schema,
                         repository_->Get(from));
  ADEPT_ASSIGN_OR_RETURN(std::shared_ptr<const ProcessSchema> to_schema,
                         repository_->Get(to));

  MigrationReport report;
  report.type_name = from_schema->type_name();
  report.from = from;
  report.to = to;
  report.from_version = from_schema->version();
  report.to_version = to_schema->version();

  for (InstanceId id : store_->Ids()) {
    auto record = store_->Get(id);
    if (!record.ok() || (*record)->base_schema != from) continue;
    auto result = MigrateOne(id, from, to, *type_change, options);
    if (result.ok()) {
      report.results.push_back(std::move(result).value());
    } else {
      report.results.push_back(InstanceMigrationResult{
          id, MigrationOutcome::kError, false, result.status().message()});
    }
  }
  return report;
}

Result<InstanceMigrationResult> MigrationManager::MigrateOne(
    InstanceId id, SchemaId from, SchemaId to, const Delta& type_change,
    const MigrationOptions& options) {
  ProcessInstance* instance = engine_->Find(id);
  if (instance == nullptr) return Status::NotFound("instance not registered");
  ADEPT_ASSIGN_OR_RETURN(const InstanceStore::Record* record, store_->Get(id));
  if (record->base_schema != from) {
    return InstanceMigrationResult{id, MigrationOutcome::kNotOnSourceVersion,
                                   record->biased(), ""};
  }
  if (instance->Finished()) {
    return InstanceMigrationResult{id, MigrationOutcome::kFinishedSkipped,
                                   record->biased(), ""};
  }
  if (record->biased()) {
    return MigrateBiased(*instance, *record, to, type_change, options);
  }
  return MigrateUnbiased(*instance, to, type_change, options);
}

Result<InstanceMigrationResult> MigrationManager::MigrateUnbiased(
    ProcessInstance& instance, SchemaId to, const Delta& type_change,
    const MigrationOptions& options) {
  InstanceMigrationResult result{instance.id(), MigrationOutcome::kError,
                                 false, ""};
  ADEPT_ASSIGN_OR_RETURN(std::shared_ptr<const ProcessSchema> target,
                         repository_->Get(to));

  if (options.use_replay_checker) {
    ReplayResult rr = CheckComplianceByReplay(instance, target);
    if (!rr.compliant) {
      result.outcome = MigrationOutcome::kStateConflict;
      result.detail = rr.reason;
      return result;
    }
  } else {
    ConditionResult cond = CheckStateConditions(instance, type_change);
    if (!cond.compliant) {
      result.outcome = MigrationOutcome::kStateConflict;
      result.detail = cond.reason;
      return result;
    }
  }
  if (options.dry_run) {
    result.outcome = MigrationOutcome::kMigrated;
    result.detail = "dry run";
    return result;
  }

  ADEPT_ASSIGN_OR_RETURN(std::shared_ptr<const SchemaView> view,
                         store_->Rebase(instance.id(), to));
  ADEPT_RETURN_IF_ERROR(instance.AdoptSchema(view, to));
  instance.mutable_trace().Append(
      {.kind = TraceEventKind::kMigrated,
       .detail = StrFormat("to version %d", target->version())});

  if (options.verify_adaptation_with_replay) {
    ReplayResult oracle = CheckComplianceByReplay(instance, view);
    if (!oracle.compliant ||
        !MarkingsAgree(oracle.adapted_marking, instance.marking())) {
      result.outcome = MigrationOutcome::kError;
      result.detail = "state adaptation diverges from replay oracle: " +
                      oracle.reason;
      return result;
    }
  }
  result.outcome = MigrationOutcome::kMigrated;
  return result;
}

Result<InstanceMigrationResult> MigrationManager::MigrateBiased(
    ProcessInstance& instance, const InstanceStore::Record& record,
    SchemaId to, const Delta& type_change, const MigrationOptions& options) {
  InstanceMigrationResult result{instance.id(), MigrationOutcome::kError,
                                 true, ""};
  ADEPT_ASSIGN_OR_RETURN(std::shared_ptr<const ProcessSchema> target,
                         repository_->Get(to));

  OverlapKind overlap = AnalyzeOverlap(type_change, record.bias);
  switch (overlap) {
    case OverlapKind::kPartial:
    case OverlapKind::kSubsumedByInstance: {
      result.outcome = MigrationOutcome::kSemanticConflict;
      result.detail = StrFormat(
          "type change and instance bias overlap (%s); manual resolution "
          "required",
          OverlapKindToString(overlap));
      return result;
    }
    case OverlapKind::kEquivalent:
    case OverlapKind::kSubsumesInstance: {
      // Everything the bias did is part of S'. Check the state conditions
      // of the genuinely new operations only, then cancel the bias. The
      // type change's pinned ids are resolved against the instance through
      // the cancellation mapping (type id -> the instance's bias twin).
      ADEPT_ASSIGN_OR_RETURN(
          IdMapping mapping,
          BuildBiasCancellationMapping(type_change, record.bias));
      ConditionContext ctx;
      for (const auto& [bias_id, type_id] : mapping.nodes) {
        ctx.aliases.emplace(type_id, bias_id);
      }
      for (const auto& op : type_change.ops()) {
        for (uint32_t id : op->pinned_node_ids()) {
          if (ctx.aliases.count(NodeId(id)) == 0) {
            ctx.created_nodes.insert(NodeId(id));
          }
        }
      }
      for (const ChangeOp* op : UnmatchedOps(type_change, record.bias)) {
        ConditionResult cond = CheckOpStateCondition(instance, *op, ctx);
        if (!cond.compliant) {
          result.outcome = MigrationOutcome::kStateConflict;
          result.detail = cond.reason;
          return result;
        }
      }
      if (options.dry_run) {
        result.outcome = MigrationOutcome::kBiasCancelled;
        result.detail = "dry run";
        return result;
      }
      RemapInstanceState(instance, mapping);
      ADEPT_ASSIGN_OR_RETURN(std::shared_ptr<const SchemaView> view,
                             store_->ClearBias(instance.id(), to));
      ADEPT_RETURN_IF_ERROR(instance.AdoptSchema(view, to));
      instance.set_biased(false);
      instance.mutable_trace().Append(
          {.kind = TraceEventKind::kMigrated,
           .detail = StrFormat("to version %d (bias cancelled: %s)",
                               target->version(),
                               OverlapKindToString(overlap))});
      result.outcome = MigrationOutcome::kBiasCancelled;
      return result;
    }
    case OverlapKind::kDisjoint:
      break;  // handled below
  }

  // Structural check: does the bias still apply on top of S', and is the
  // combined schema correct? (Fig. 1: instance I2 fails here with a
  // deadlock-causing cycle.) Probe with a cloned delta so nothing commits.
  {
    Delta probe = record.bias.Clone();
    BiasIdAllocator alloc;
    // Incremental probe: seed from the target version's cached analysis so
    // only the blocks the bias touches are re-verified.
    std::shared_ptr<const SchemaAnalysis> target_analysis;
    if (auto a = repository_->AnalysisFor(to); a.ok()) {
      target_analysis = *a;
    }
    auto candidate = probe.ApplyVerified(*target, target_analysis.get(),
                                         target->version(), &alloc);
    if (!candidate.ok()) {
      result.outcome = MigrationOutcome::kStructuralConflict;
      result.detail = candidate.status().message();
      return result;
    }
    if (options.use_replay_checker) {
      std::shared_ptr<const SchemaView> candidate_view = candidate->schema;
      ReplayResult rr = CheckComplianceByReplay(instance, candidate_view);
      if (!rr.compliant) {
        result.outcome = MigrationOutcome::kStateConflict;
        result.detail = rr.reason;
        return result;
      }
    }
  }
  if (!options.use_replay_checker) {
    ConditionResult cond = CheckStateConditions(instance, type_change);
    if (!cond.compliant) {
      result.outcome = MigrationOutcome::kStateConflict;
      result.detail = cond.reason;
      return result;
    }
  }
  if (options.dry_run) {
    result.outcome = MigrationOutcome::kMigratedBiased;
    result.detail = "dry run";
    return result;
  }

  ADEPT_ASSIGN_OR_RETURN(std::shared_ptr<const SchemaView> view,
                         store_->Rebase(instance.id(), to));
  ADEPT_RETURN_IF_ERROR(instance.AdoptSchema(view, to));
  instance.mutable_trace().Append(
      {.kind = TraceEventKind::kMigrated,
       .detail =
           StrFormat("to version %d (bias kept)", target->version())});

  if (options.verify_adaptation_with_replay) {
    ReplayResult oracle = CheckComplianceByReplay(instance, view);
    if (!oracle.compliant ||
        !MarkingsAgree(oracle.adapted_marking, instance.marking())) {
      result.outcome = MigrationOutcome::kError;
      result.detail =
          "state adaptation diverges from replay oracle: " + oracle.reason;
      return result;
    }
  }
  result.outcome = MigrationOutcome::kMigratedBiased;
  return result;
}

}  // namespace adept
