// Semantic overlap analysis between a type change (Delta-T) and an
// instance's ad-hoc bias (Delta-I).
//
// ADEPT2's correctness principle for migrating biased instances "excludes
// state-related, structural, and semantical conflicts". Structural and
// state conflicts are detected by schema re-verification and the compliance
// conditions; this module classifies the *semantic* relationship between
// the two deltas [Rinderle 2004]:
//
//   kDisjoint             no shared operations, no shared target nodes:
//                         both changes compose; migrate and keep the bias
//   kEquivalent           identical operation sets: the user anticipated
//                         the type change ad hoc; migrate and *cancel* the
//                         bias (instance becomes unbiased on S')
//   kSubsumesInstance     Delta-T contains every bias op (plus more):
//                         migrate and cancel the bias likewise
//   kSubsumedByInstance   the bias contains every type op plus its own:
//                         reported as a semantic conflict (would need
//                         partial bias rewriting)
//   kPartial              overlapping but incomparable: semantic conflict,
//                         manual resolution required

#ifndef ADEPT_COMPLIANCE_CONFLICTS_H_
#define ADEPT_COMPLIANCE_CONFLICTS_H_

#include <unordered_map>

#include "change/delta.h"

namespace adept {

enum class OverlapKind {
  kDisjoint = 0,
  kEquivalent,
  kSubsumesInstance,
  kSubsumedByInstance,
  kPartial,
};

const char* OverlapKindToString(OverlapKind kind);

OverlapKind AnalyzeOverlap(const Delta& type_change, const Delta& bias);

// For kEquivalent / kSubsumesInstance migrations: maps the bias ops' pinned
// entity ids onto the type change's pinned ids (signature-equal ops are
// paired in order), so the instance's marking/trace/data can be rewritten
// onto S''s entities when the bias is cancelled.
struct IdMapping {
  std::unordered_map<NodeId, NodeId> nodes;
  std::unordered_map<EdgeId, EdgeId> edges;
  std::unordered_map<DataId, DataId> data;

  bool empty() const { return nodes.empty() && edges.empty() && data.empty(); }
};

Result<IdMapping> BuildBiasCancellationMapping(const Delta& type_change,
                                               const Delta& bias);

}  // namespace adept

#endif  // ADEPT_COMPLIANCE_CONFLICTS_H_
