#include "compliance/conditions.h"

#include <unordered_set>

#include "common/string_util.h"

namespace adept {

namespace {

bool Started(NodeState s) {
  return s == NodeState::kRunning || s == NodeState::kSuspended ||
         s == NodeState::kFailed || s == NodeState::kCompleted;
}

bool NotStarted(NodeState s) {
  return s == NodeState::kNotActivated || s == NodeState::kActivated;
}

std::string NodeDesc(const ProcessInstance& instance, NodeId id) {
  const Node* n = instance.schema().FindNode(id);
  if (n == nullptr) return StrFormat("n%u", id.value());
  return "'" + n->name + "'";
}

// Resolves the effective state of a node reference under the context:
// delta-created nodes behave as fresh NotActivated nodes; alias-translated
// ids are looked up in the instance marking. Returns nullopt if the
// reference cannot be resolved at all.
std::optional<NodeState> EffectiveState(const ProcessInstance& instance,
                                        const ConditionContext& ctx,
                                        NodeId raw) {
  NodeId resolved = ctx.Resolve(raw);
  if (instance.schema().FindNode(resolved) != nullptr) {
    return instance.node_state(resolved);
  }
  if (ctx.IsCreated(raw)) return NodeState::kNotActivated;
  return std::nullopt;
}

// The paper's insertion clause: the node behind the insertion point must
// not have been started; a skipped node is acceptable as long as nothing
// behind it (transitively, along control edges) has started either — the
// dead region has not been "passed".
ConditionResult InsertionPointCondition(const ProcessInstance& instance,
                                        const ConditionContext& ctx,
                                        NodeId behind,
                                        const std::string& op_name) {
  std::optional<NodeState> state = EffectiveState(instance, ctx, behind);
  if (!state.has_value()) {
    return ConditionResult::Fail(
        op_name + ": anchor node no longer exists in the instance schema");
  }
  if (NotStarted(*state)) return ConditionResult::Ok();
  if (*state == NodeState::kSkipped) {
    const SchemaView& schema = instance.schema();
    NodeId start = ctx.Resolve(behind);
    std::vector<NodeId> stack{start};
    std::unordered_set<NodeId> seen{start};
    while (!stack.empty()) {
      NodeId cur = stack.back();
      stack.pop_back();
      bool bad = false;
      schema.VisitOutEdges(cur, [&](const Edge& e) {
        if (e.type != EdgeType::kControl || bad) return;
        NodeState s = instance.node_state(e.dst);
        if (Started(s)) {
          bad = true;
          return;
        }
        if (s == NodeState::kSkipped && seen.insert(e.dst).second) {
          stack.push_back(e.dst);
        }
      });
      if (bad) {
        return ConditionResult::Fail(StrFormat(
            "%s: skipped insertion point %s lies before already started "
            "nodes",
            op_name.c_str(), NodeDesc(instance, start).c_str()));
      }
    }
    return ConditionResult::Ok();
  }
  return ConditionResult::Fail(StrFormat(
      "%s: node %s is already %s", op_name.c_str(),
      NodeDesc(instance, ctx.Resolve(behind)).c_str(),
      NodeStateToString(*state)));
}

ConditionResult NotStartedCondition(const ProcessInstance& instance,
                                    const ConditionContext& ctx, NodeId target,
                                    const std::string& op_name,
                                    const std::string& what) {
  std::optional<NodeState> state = EffectiveState(instance, ctx, target);
  if (!state.has_value()) {
    return ConditionResult::Fail(
        op_name + ": " + what + " no longer exists in the instance schema");
  }
  if (NotStarted(*state) || *state == NodeState::kSkipped) {
    return ConditionResult::Ok();
  }
  return ConditionResult::Fail(StrFormat(
      "%s: %s %s is already %s", op_name.c_str(), what.c_str(),
      NodeDesc(instance, ctx.Resolve(target)).c_str(),
      NodeStateToString(*state)));
}

// Sequence of the event that resolved `node` (completion or skip), -1 if
// unresolved. Scans backwards, respecting loop resets like LastStartSeq.
int64_t ResolutionSeq(const ProcessInstance& instance, NodeId node) {
  const auto& events = instance.trace().events();
  for (auto it = events.rbegin(); it != events.rend(); ++it) {
    if (it->kind == TraceEventKind::kLoopReset) {
      for (NodeId n : it->reset_nodes) {
        if (n == node) return -1;
      }
    }
    if (it->node == node &&
        (it->kind == TraceEventKind::kActivityCompleted ||
         it->kind == TraceEventKind::kActivitySkipped)) {
      return it->sequence;
    }
  }
  return -1;
}

}  // namespace

ConditionContext ConditionContext::ForDelta(const Delta& delta) {
  ConditionContext ctx;
  for (const auto& op : delta.ops()) {
    for (uint32_t id : op->pinned_node_ids()) {
      ctx.created_nodes.insert(NodeId(id));
    }
  }
  return ctx;
}

ConditionResult CheckOpStateCondition(const ProcessInstance& instance,
                                      const ChangeOp& op,
                                      const ConditionContext& ctx) {
  const SchemaView& schema = instance.schema();
  switch (op.kind()) {
    case ChangeOpKind::kSerialInsert: {
      const auto& insert = static_cast<const SerialInsertOp&>(op);
      return InsertionPointCondition(instance, ctx, insert.succ(),
                                     "serialInsert");
    }
    case ChangeOpKind::kParallelInsert: {
      const auto& insert = static_cast<const ParallelInsertOp&>(op);
      NodeId to = ctx.Resolve(insert.to());
      if (schema.FindNode(to) == nullptr) {
        return ConditionResult::Fail(
            "parallelInsert: region exit no longer exists");
      }
      NodeId behind = schema.ControlSuccessor(to);
      if (!behind.valid()) {
        return ConditionResult::Fail(
            "parallelInsert: region exit has no unique control successor");
      }
      return InsertionPointCondition(instance, ctx, behind, "parallelInsert");
    }
    case ChangeOpKind::kBranchInsert: {
      const auto& insert = static_cast<const BranchInsertOp&>(op);
      if (!EffectiveState(instance, ctx, insert.split()).has_value()) {
        return ConditionResult::Fail("branchInsert: split no longer exists");
      }
      // A branch added to a decided (or undecided) XOR block is always
      // replay-compatible: it is either still selectable or dead.
      return ConditionResult::Ok();
    }
    case ChangeOpKind::kDeleteActivity: {
      const auto& del = static_cast<const DeleteActivityOp&>(op);
      return NotStartedCondition(instance, ctx, del.target(), "deleteActivity",
                                 "activity");
    }
    case ChangeOpKind::kMoveActivity: {
      const auto& move = static_cast<const MoveActivityOp&>(op);
      ConditionResult del = NotStartedCondition(
          instance, ctx, move.target(), "moveActivity", "activity");
      if (!del.compliant) return del;
      return InsertionPointCondition(instance, ctx, move.new_succ(),
                                     "moveActivity");
    }
    case ChangeOpKind::kInsertSyncEdge: {
      const auto& sync = static_cast<const InsertSyncEdgeOp&>(op);
      std::optional<NodeState> from_state =
          EffectiveState(instance, ctx, sync.from());
      std::optional<NodeState> to_state =
          EffectiveState(instance, ctx, sync.to());
      if (!from_state.has_value() || !to_state.has_value()) {
        return ConditionResult::Fail(
            "insertSyncEdge: endpoint no longer exists");
      }
      if (NotStarted(*to_state) || *to_state == NodeState::kSkipped) {
        return ConditionResult::Ok();
      }
      // Target already started: the trace must witness that the source was
      // resolved (completed or skipped) before the target started. A node
      // freshly created by this delta has no such witness.
      NodeId from = ctx.Resolve(sync.from());
      NodeId to = ctx.Resolve(sync.to());
      int64_t started = instance.trace().LastStartSeq(to);
      int64_t resolved = ResolutionSeq(instance, from);
      if (resolved >= 0 && started >= 0 && resolved < started) {
        return ConditionResult::Ok();
      }
      return ConditionResult::Fail(StrFormat(
          "insertSyncEdge: %s already started but %s was not resolved "
          "before it",
          NodeDesc(instance, to).c_str(), NodeDesc(instance, from).c_str()));
    }
    case ChangeOpKind::kDeleteSyncEdge:
      return ConditionResult::Ok();
    case ChangeOpKind::kAddDataElement:
      return ConditionResult::Ok();
    case ChangeOpKind::kAddDataEdge: {
      const auto& add = static_cast<const AddDataEdgeOp&>(op);
      if (add.mode() == AccessMode::kRead && add.optional()) {
        return ConditionResult::Ok();
      }
      ConditionResult untouched =
          NotStartedCondition(instance, ctx, add.node(), "addDataEdge", "node");
      if (untouched.compliant) return untouched;
      if (add.mode() == AccessMode::kRead) {
        // Mandatory read added to a started node: compliant iff a value was
        // already available when the node started (the replay would find it).
        NodeId node = ctx.Resolve(add.node());
        int64_t started = instance.trace().LastStartSeq(node);
        for (const auto& v : instance.data().History(add.data())) {
          if (started >= 0 && v.sequence < started) {
            return ConditionResult::Ok();
          }
        }
        return ConditionResult::Fail(
            "addDataEdge: mandatory input added to a started node without a "
            "previously available value");
      }
      return untouched;  // write edges cannot be added retroactively
    }
    case ChangeOpKind::kDeleteDataEdge: {
      const auto& del = static_cast<const DeleteDataEdgeOp&>(op);
      // Removing a read edge never invalidates the recorded history (the
      // consumed value stays consumed); removing a write edge of a started
      // node would contradict its recorded output.
      if (del.mode() == AccessMode::kRead) return ConditionResult::Ok();
      return NotStartedCondition(instance, ctx, del.node(), "deleteDataEdge",
                                 "node");
    }
    case ChangeOpKind::kReplaceActivityImpl: {
      const auto& repl = static_cast<const ReplaceActivityImplOp&>(op);
      return NotStartedCondition(instance, ctx, repl.node(),
                                 "replaceActivityImpl", "activity");
    }
  }
  return ConditionResult::Fail("unknown change operation kind");
}

ConditionResult CheckStateConditions(const ProcessInstance& instance,
                                     const Delta& delta) {
  return CheckStateConditions(instance, delta,
                              ConditionContext::ForDelta(delta));
}

ConditionResult CheckStateConditions(const ProcessInstance& instance,
                                     const Delta& delta,
                                     const ConditionContext& ctx) {
  for (const auto& op : delta.ops()) {
    ConditionResult r = CheckOpStateCondition(instance, *op, ctx);
    if (!r.compliant) return r;
  }
  return ConditionResult::Ok();
}

}  // namespace adept
