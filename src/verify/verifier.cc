#include "verify/verifier.h"

#include <algorithm>
#include <sstream>

#include "verify/analysis.h"

namespace adept {

namespace {

const char* SpanKindString(EntitySpan::Kind kind) {
  switch (kind) {
    case EntitySpan::Kind::kNode:
      return "node";
    case EntitySpan::Kind::kEdge:
      return "edge";
    case EntitySpan::Kind::kData:
      return "data";
  }
  return "?";
}

}  // namespace

JsonValue VerificationIssue::ToJson() const {
  JsonValue j = JsonValue::MakeObject();
  j.Set("rule_id", VerifyRuleId(rule));
  j.Set("rule", VerifyRuleToString(rule));
  j.Set("severity", severity == VerifySeverity::kError ? "error" : "warning");
  j.Set("message", message);
  if (node.valid()) j.Set("node", node.value());
  if (edge.valid()) j.Set("edge", edge.value());
  if (data.valid()) j.Set("data", data.value());
  JsonValue spans = JsonValue::MakeArray();
  for (const EntitySpan& s : span) {
    JsonValue js = JsonValue::MakeObject();
    js.Set("kind", SpanKindString(s.kind));
    js.Set("id", s.id);
    spans.Append(std::move(js));
  }
  j.Set("span", std::move(spans));
  if (!fix_hint.empty()) j.Set("fix_hint", fix_hint);
  return j;
}

bool VerificationReport::ok() const { return error_count() == 0; }

size_t VerificationReport::error_count() const {
  return static_cast<size_t>(
      std::count_if(issues_.begin(), issues_.end(), [](const auto& i) {
        return i.severity == VerifySeverity::kError;
      }));
}

size_t VerificationReport::warning_count() const {
  return issues_.size() - error_count();
}

std::string VerificationReport::FirstError() const {
  for (const auto& i : issues_) {
    if (i.severity == VerifySeverity::kError) return i.message;
  }
  return "";
}

std::string VerificationReport::DebugString() const {
  std::ostringstream os;
  for (const auto& i : issues_) {
    os << (i.severity == VerifySeverity::kError ? "ERROR" : "WARN") << " ["
       << VerifyRuleToString(i.rule) << "] " << i.message << "\n";
  }
  if (issues_.empty()) os << "clean\n";
  return os.str();
}

JsonValue VerificationReport::ToJson() const {
  JsonValue j = JsonValue::MakeObject();
  j.Set("ok", ok());
  j.Set("errors", static_cast<uint64_t>(error_count()));
  j.Set("warnings", static_cast<uint64_t>(warning_count()));
  JsonValue findings = JsonValue::MakeArray();
  for (const VerificationIssue& i : issues_) findings.Append(i.ToJson());
  j.Set("findings", std::move(findings));
  return j;
}

std::string VerificationReport::CanonicalString() const {
  std::vector<std::string> lines;
  lines.reserve(issues_.size());
  for (const VerificationIssue& i : issues_) {
    std::ostringstream os;
    os << VerifyRuleId(i.rule)
       << (i.severity == VerifySeverity::kError ? " E " : " W ") << i.message;
    std::vector<EntitySpan> span = i.span;
    std::sort(span.begin(), span.end());
    for (const EntitySpan& s : span) {
      os << " " << SpanKindString(s.kind) << ":" << s.id;
    }
    if (!i.fix_hint.empty()) os << " | " << i.fix_hint;
    lines.push_back(os.str());
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

const char* VerifyRuleToString(VerifyRule rule) {
  switch (rule) {
    case VerifyRule::kStructure:
      return "structure";
    case VerifyRule::kControlCycle:
      return "control-cycle";
    case VerifyRule::kBlockNesting:
      return "block-nesting";
    case VerifyRule::kSyncEdge:
      return "sync-edge";
    case VerifyRule::kDeadlockCycle:
      return "deadlock-cycle";
    case VerifyRule::kDecision:
      return "decision";
    case VerifyRule::kMissingData:
      return "missing-data";
    case VerifyRule::kLostUpdate:
      return "lost-update";
    case VerifyRule::kDataRace:
      return "data-race";
    case VerifyRule::kNaming:
      return "naming";
    case VerifyRule::kStuckActivity:
      return "stuck-activity";
    case VerifyRule::kOrphanedClaim:
      return "orphaned-claim";
    case VerifyRule::kReplicationDegraded:
      return "replication-degraded";
  }
  return "unknown";
}

const char* VerifyRuleId(VerifyRule rule) {
  switch (rule) {
    case VerifyRule::kStructure:
      return "AV001";
    case VerifyRule::kControlCycle:
      return "AV002";
    case VerifyRule::kBlockNesting:
      return "AV003";
    case VerifyRule::kSyncEdge:
      return "AV004";
    case VerifyRule::kDeadlockCycle:
      return "AV005";
    case VerifyRule::kDecision:
      return "AV006";
    case VerifyRule::kMissingData:
      return "AV007";
    case VerifyRule::kLostUpdate:
      return "AV008";
    case VerifyRule::kDataRace:
      return "AV009";
    case VerifyRule::kNaming:
      return "AV010";
    case VerifyRule::kStuckActivity:
      return "AV011";
    case VerifyRule::kOrphanedClaim:
      return "AV012";
    case VerifyRule::kReplicationDegraded:
      return "AV013";
  }
  return "AV000";
}

VerificationReport VerifySchema(const SchemaView& schema) {
  return AnalyzeSchema(schema).report;
}

Status VerifySchemaOrError(const SchemaView& schema) {
  VerificationReport report = VerifySchema(schema);
  if (report.ok()) return Status::OK();
  return Status::VerificationFailed(report.FirstError());
}

}  // namespace adept
