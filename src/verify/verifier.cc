#include "verify/verifier.h"

#include <algorithm>
#include <deque>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"
#include "model/block_tree.h"
#include "model/node.h"

namespace adept {

namespace {

std::string NodeDesc(const SchemaView& schema, NodeId id) {
  const Node* n = schema.FindNode(id);
  if (n == nullptr) return "<missing>";
  if (n->name.empty()) return NodeTypeToString(n->type);
  return n->name;
}

class VerifyPass {
 public:
  explicit VerifyPass(const SchemaView& schema) : schema_(schema) {}

  VerificationReport Run() {
    CollectEntities();
    CheckDegrees();
    CheckControlAcyclic();
    CheckBlockStructure();
    CheckSyncEdges();
    CheckDeadlockCycles();
    CheckDecisions();
    CheckDataFlow();
    CheckDataRaces();
    CheckNaming();
    return std::move(report_);
  }

 private:
  void Error(VerifyRule rule, std::string msg, NodeId node = NodeId::Invalid(),
             EdgeId edge = EdgeId::Invalid(), DataId data = DataId::Invalid()) {
    report_.Add(
        {rule, VerifySeverity::kError, std::move(msg), node, edge, data});
  }
  void Warn(VerifyRule rule, std::string msg, NodeId node = NodeId::Invalid(),
            EdgeId edge = EdgeId::Invalid(), DataId data = DataId::Invalid()) {
    report_.Add(
        {rule, VerifySeverity::kWarning, std::move(msg), node, edge, data});
  }

  void CollectEntities() {
    schema_.VisitNodes([&](const Node& n) { nodes_.push_back(&n); });
    schema_.VisitEdges([&](const Edge& e) { edges_.push_back(&e); });
  }

  struct Degrees {
    int in_control = 0, out_control = 0;
    int in_sync = 0, out_sync = 0;
    int in_loop = 0, out_loop = 0;
  };

  Degrees DegreesOf(NodeId id) {
    Degrees d;
    schema_.VisitInEdges(id, [&](const Edge& e) {
      switch (e.type) {
        case EdgeType::kControl:
          d.in_control++;
          break;
        case EdgeType::kSync:
          d.in_sync++;
          break;
        case EdgeType::kLoop:
          d.in_loop++;
          break;
      }
    });
    schema_.VisitOutEdges(id, [&](const Edge& e) {
      switch (e.type) {
        case EdgeType::kControl:
          d.out_control++;
          break;
        case EdgeType::kSync:
          d.out_sync++;
          break;
        case EdgeType::kLoop:
          d.out_loop++;
          break;
      }
    });
    return d;
  }

  void CheckDegrees() {
    int starts = 0, ends = 0;
    for (const Node* n : nodes_) {
      Degrees d = DegreesOf(n->id);
      auto expect = [&](bool cond, const std::string& what) {
        if (!cond) {
          Error(VerifyRule::kStructure,
                NodeDesc(schema_, n->id) + ": " + what, n->id);
        }
      };
      switch (n->type) {
        case NodeType::kStartFlow:
          ++starts;
          expect(d.in_control == 0,
                 "start-flow must have no incoming control edge");
          expect(d.out_control == 1,
                 "start-flow must have exactly one outgoing control edge");
          expect(d.in_sync == 0 && d.out_sync == 0,
                 "start-flow must not touch sync edges");
          expect(d.in_loop == 0 && d.out_loop == 0,
                 "start-flow must not touch loop edges");
          break;
        case NodeType::kEndFlow:
          ++ends;
          expect(d.in_control == 1,
                 "end-flow must have exactly one incoming control edge");
          expect(d.out_control == 0,
                 "end-flow must have no outgoing control edge");
          expect(d.in_sync == 0 && d.out_sync == 0,
                 "end-flow must not touch sync edges");
          expect(d.in_loop == 0 && d.out_loop == 0,
                 "end-flow must not touch loop edges");
          break;
        case NodeType::kActivity:
          expect(d.in_control == 1,
                 "activity must have exactly one incoming control edge");
          expect(d.out_control == 1,
                 "activity must have exactly one outgoing control edge");
          expect(d.in_loop == 0 && d.out_loop == 0,
                 "activity must not touch loop edges");
          break;
        case NodeType::kAndSplit:
        case NodeType::kXorSplit:
          expect(d.in_control == 1,
                 "split must have exactly one incoming control edge");
          expect(d.out_control >= 2,
                 "split must have >= 2 outgoing control edges");
          expect(d.in_loop == 0 && d.out_loop == 0,
                 "split must not touch loop edges");
          break;
        case NodeType::kAndJoin:
        case NodeType::kXorJoin:
          expect(d.in_control >= 2,
                 "join must have >= 2 incoming control edges");
          expect(d.out_control == 1,
                 "join must have exactly one outgoing control edge");
          expect(d.in_loop == 0 && d.out_loop == 0,
                 "join must not touch loop edges");
          break;
        case NodeType::kLoopStart:
          expect(d.in_control == 1,
                 "loop start must have exactly one incoming control edge");
          expect(d.out_control == 1,
                 "loop start must have exactly one body branch");
          expect(d.in_loop == 1,
                 "loop start must have exactly one incoming loop edge");
          expect(d.out_loop == 0, "loop start must have no outgoing loop edge");
          break;
        case NodeType::kLoopEnd:
          expect(d.in_control == 1,
                 "loop end must have exactly one incoming control edge");
          expect(d.out_control == 1,
                 "loop end must have exactly one outgoing control edge");
          expect(d.out_loop == 1,
                 "loop end must have exactly one outgoing loop edge");
          expect(d.in_loop == 0, "loop end must have no incoming loop edge");
          break;
      }
    }
    if (starts != 1) {
      Error(VerifyRule::kStructure,
            StrFormat("schema has %d start-flow nodes, expected 1", starts));
    }
    if (ends != 1) {
      Error(VerifyRule::kStructure,
            StrFormat("schema has %d end-flow nodes, expected 1", ends));
    }
    for (const Edge* e : edges_) {
      if (e->type == EdgeType::kLoop) {
        const Node* src = schema_.FindNode(e->src);
        const Node* dst = schema_.FindNode(e->dst);
        if (src == nullptr || dst == nullptr ||
            src->type != NodeType::kLoopEnd ||
            dst->type != NodeType::kLoopStart) {
          Error(VerifyRule::kStructure,
                "loop edge must connect a loop end to a loop start",
                NodeId::Invalid(), e->id);
        }
      }
    }
  }

  void CheckControlAcyclic() {
    topo_order_ = schema_.TopologicalOrder();
    control_acyclic_ = topo_order_.size() == schema_.node_count();
    if (!control_acyclic_) {
      Error(VerifyRule::kControlCycle,
            "control-edge graph contains a cycle");
    }
  }

  void CheckBlockStructure() {
    auto tree = BlockTree::Build(schema_);
    if (tree.ok()) {
      tree_ = std::move(tree).value();
    } else {
      Error(VerifyRule::kBlockNesting, tree.status().message());
    }
  }

  void CheckSyncEdges() {
    for (const Edge* e : edges_) {
      if (e->type != EdgeType::kSync) continue;
      const Node* src = schema_.FindNode(e->src);
      const Node* dst = schema_.FindNode(e->dst);
      if (src == nullptr || dst == nullptr) continue;  // freeze caught this
      if (src->type != NodeType::kActivity ||
          dst->type != NodeType::kActivity) {
        Error(VerifyRule::kSyncEdge,
              StrFormat("sync edge %s->%s must connect activities",
                        NodeDesc(schema_, e->src).c_str(),
                        NodeDesc(schema_, e->dst).c_str()),
              e->src, e->id);
        continue;
      }
      if (!tree_.has_value()) continue;
      if (!tree_->InDifferentParallelBranches(e->src, e->dst)) {
        Error(VerifyRule::kSyncEdge,
              StrFormat("sync edge %s->%s does not connect different "
                        "branches of a common parallel block",
                        NodeDesc(schema_, e->src).c_str(),
                        NodeDesc(schema_, e->dst).c_str()),
              e->src, e->id);
      }
      if (tree_->InnermostLoop(e->src) != tree_->InnermostLoop(e->dst)) {
        Error(VerifyRule::kSyncEdge,
              StrFormat("sync edge %s->%s crosses a loop boundary",
                        NodeDesc(schema_, e->src).c_str(),
                        NodeDesc(schema_, e->dst).c_str()),
              e->src, e->id);
      }
    }
  }

  // Kahn over control + sync edges; a shortfall is a deadlock-causing cycle
  // (paper Fig. 1: instance I2). Extracts one concrete cycle for the report.
  void CheckDeadlockCycles() {
    std::unordered_map<NodeId, int> indegree;
    for (const Node* n : nodes_) indegree[n->id] = 0;
    for (const Edge* e : edges_) {
      if (e->type != EdgeType::kLoop) indegree[e->dst]++;
    }
    std::deque<NodeId> ready;
    for (const Node* n : nodes_) {
      if (indegree[n->id] == 0) ready.push_back(n->id);
    }
    size_t emitted = 0;
    while (!ready.empty()) {
      NodeId cur = ready.front();
      ready.pop_front();
      ++emitted;
      schema_.VisitOutEdges(cur, [&](const Edge& e) {
        if (e.type == EdgeType::kLoop) return;
        if (--indegree[e.dst] == 0) ready.push_back(e.dst);
      });
    }
    if (emitted == schema_.node_count()) return;

    // Extract one concrete cycle from the residual subgraph with a DFS that
    // backtracks out of dead ends (residual nodes downstream of the cycle).
    std::vector<std::string> names;
    std::unordered_set<NodeId> exhausted;
    for (const auto& [seed, deg] : indegree) {
      if (deg == 0 || !names.empty()) continue;
      std::vector<NodeId> path{seed};
      std::unordered_set<NodeId> on_path{seed};
      while (!path.empty() && names.empty()) {
        NodeId cur = path.back();
        NodeId next;
        NodeId repeat;
        schema_.VisitOutEdges(cur, [&](const Edge& e) {
          if (e.type == EdgeType::kLoop || next.valid() || repeat.valid()) {
            return;
          }
          if (indegree[e.dst] <= 0 || exhausted.count(e.dst) > 0) return;
          if (on_path.count(e.dst) > 0) {
            repeat = e.dst;
          } else {
            next = e.dst;
          }
        });
        if (repeat.valid()) {
          bool in_cycle = false;
          for (NodeId n : path) {
            if (n == repeat) in_cycle = true;
            if (in_cycle) names.push_back(NodeDesc(schema_, n));
          }
          names.push_back(NodeDesc(schema_, repeat));
          break;
        }
        if (next.valid()) {
          path.push_back(next);
          on_path.insert(next);
        } else {
          exhausted.insert(cur);
          on_path.erase(cur);
          path.pop_back();
        }
      }
    }
    Error(VerifyRule::kDeadlockCycle,
          "deadlock-causing cycle over control+sync edges: " +
              Join(names, " -> "));
  }

  void CheckDecisions() {
    for (const Node* n : nodes_) {
      if (n->type == NodeType::kXorSplit) {
        if (!n->decision_data.valid()) {
          Warn(VerifyRule::kDecision,
               NodeDesc(schema_, n->id) +
                   ": XOR split without decision data element (requires "
                   "explicit runtime branch selection)",
               n->id);
        } else {
          const DataElement* d = schema_.FindData(n->decision_data);
          if (d == nullptr) {
            Error(VerifyRule::kDecision,
                  NodeDesc(schema_, n->id) + ": decision data element missing",
                  n->id, EdgeId::Invalid(), n->decision_data);
          } else if (d->type != DataType::kInt) {
            Error(VerifyRule::kDecision,
                  NodeDesc(schema_, n->id) +
                      ": decision data element must be int, is " +
                      DataTypeToString(d->type),
                  n->id, EdgeId::Invalid(), d->id);
          }
        }
        std::unordered_set<int> seen;
        schema_.VisitOutEdges(n->id, [&](const Edge& e) {
          if (e.type != EdgeType::kControl) return;
          if (!seen.insert(e.branch_value).second) {
            Error(VerifyRule::kDecision,
                  StrFormat("%s: duplicate branch selection code %d",
                            NodeDesc(schema_, n->id).c_str(), e.branch_value),
                  n->id, e.id);
          }
        });
      } else if (n->type == NodeType::kLoopEnd) {
        if (!n->loop_data.valid()) {
          Warn(VerifyRule::kDecision,
               NodeDesc(schema_, n->id) +
                   ": loop end without condition data element (defaults to "
                   "single iteration)",
               n->id);
        } else {
          const DataElement* d = schema_.FindData(n->loop_data);
          if (d == nullptr) {
            Error(VerifyRule::kDecision,
                  NodeDesc(schema_, n->id) + ": loop data element missing",
                  n->id, EdgeId::Invalid(), n->loop_data);
          } else if (d->type != DataType::kBool) {
            Error(VerifyRule::kDecision,
                  NodeDesc(schema_, n->id) +
                      ": loop condition element must be bool, is " +
                      DataTypeToString(d->type),
                  n->id, EdgeId::Invalid(), d->id);
          }
        }
      }
    }
  }

  // Forward guaranteed-write analysis over the acyclic control graph.
  // guar[n] = data elements surely written before n starts. XOR joins
  // intersect their branches, AND joins unite them; sync edges are ignored
  // (a skipped sync source writes nothing, so they guarantee no data).
  void CheckDataFlow() {
    if (!control_acyclic_ || !tree_.has_value()) return;

    // Dense data index.
    std::vector<DataId> data_ids = schema_.DataIds();
    std::unordered_map<DataId, size_t> index;
    for (size_t i = 0; i < data_ids.size(); ++i) index[data_ids[i]] = i;
    const size_t kWords = (data_ids.size() + 63) / 64;
    auto make_set = [&] { return std::vector<uint64_t>(kWords, 0); };
    auto set_bit = [&](std::vector<uint64_t>& s, size_t i) {
      s[i / 64] |= uint64_t{1} << (i % 64);
    };
    auto test_bit = [&](const std::vector<uint64_t>& s, size_t i) {
      return (s[i / 64] >> (i % 64)) & 1;
    };

    std::unordered_map<NodeId, std::vector<uint64_t>> guar;
    std::unordered_map<NodeId, std::vector<uint64_t>> writes;
    for (const Node* n : nodes_) {
      auto w = make_set();
      schema_.VisitDataEdges(n->id, [&](const DataEdge& de) {
        if (de.mode == AccessMode::kWrite) set_bit(w, index[de.data]);
      });
      writes[n->id] = std::move(w);
    }

    for (NodeId cur : topo_order_) {
      const Node* node = schema_.FindNode(cur);
      auto preds = schema_.Predecessors(cur, EdgeType::kControl);
      std::vector<uint64_t> g = make_set();
      bool first = true;
      for (NodeId p : preds) {
        std::vector<uint64_t> avail = guar[p];
        const auto& w = writes[p];
        for (size_t i = 0; i < kWords; ++i) avail[i] |= w[i];
        if (first) {
          g = avail;
          first = false;
        } else if (node->type == NodeType::kXorJoin) {
          for (size_t i = 0; i < kWords; ++i) g[i] &= avail[i];
        } else {  // AND join: all branches completed
          for (size_t i = 0; i < kWords; ++i) g[i] |= avail[i];
        }
      }
      guar[cur] = std::move(g);
    }

    auto require = [&](NodeId n, DataId d, const std::string& why) {
      auto it = index.find(d);
      if (it == index.end()) return;  // dangling; caught elsewhere
      if (!test_bit(guar[n], it->second)) {
        const DataElement* elem = schema_.FindData(d);
        Error(VerifyRule::kMissingData,
              StrFormat("%s: %s '%s' is not guaranteed to be written on "
                        "every path",
                        NodeDesc(schema_, n).c_str(), why.c_str(),
                        elem != nullptr ? elem->name.c_str() : "?"),
              n, EdgeId::Invalid(), d);
      }
    };

    for (const Node* n : nodes_) {
      schema_.VisitDataEdges(n->id, [&](const DataEdge& de) {
        if (de.mode == AccessMode::kRead && !de.optional) {
          require(n->id, de.data, "mandatory input");
        }
      });
      if (n->type == NodeType::kXorSplit && n->decision_data.valid()) {
        require(n->id, n->decision_data, "decision parameter");
      }
      if (n->type == NodeType::kLoopEnd && n->loop_data.valid()) {
        // The loop condition is evaluated when the loop end completes, so
        // writes of the loop end itself would also count; we keep the
        // stricter "guaranteed before start" rule for simplicity.
        require(n->id, n->loop_data, "loop condition");
      }
    }
  }

  // True if a control+sync path orders a before b (either direction checked
  // by the caller).
  bool OrderedBySync(NodeId a, NodeId b) {
    std::unordered_set<NodeId> visited{a};
    std::deque<NodeId> queue{a};
    while (!queue.empty()) {
      NodeId cur = queue.front();
      queue.pop_front();
      bool found = false;
      schema_.VisitOutEdges(cur, [&](const Edge& e) {
        if (e.type == EdgeType::kLoop || found) return;
        if (e.dst == b) {
          found = true;
          return;
        }
        if (visited.insert(e.dst).second) queue.push_back(e.dst);
      });
      if (found) return true;
    }
    return false;
  }

  void CheckDataRaces() {
    if (!tree_.has_value()) return;
    std::unordered_map<DataId, std::vector<NodeId>> writers, readers;
    for (const Node* n : nodes_) {
      schema_.VisitDataEdges(n->id, [&](const DataEdge& de) {
        if (de.mode == AccessMode::kWrite) {
          writers[de.data].push_back(n->id);
        } else {
          readers[de.data].push_back(n->id);
        }
      });
    }
    auto name_of = [&](DataId d) {
      const DataElement* e = schema_.FindData(d);
      return e != nullptr ? e->name : std::string("?");
    };
    for (const auto& [d, ws] : writers) {
      for (size_t i = 0; i < ws.size(); ++i) {
        for (size_t j = i + 1; j < ws.size(); ++j) {
          if (tree_->InDifferentParallelBranches(ws[i], ws[j]) &&
              !OrderedBySync(ws[i], ws[j]) && !OrderedBySync(ws[j], ws[i])) {
            Warn(VerifyRule::kLostUpdate,
                 StrFormat("parallel unordered writes of '%s' by %s and %s",
                           name_of(d).c_str(),
                           NodeDesc(schema_, ws[i]).c_str(),
                           NodeDesc(schema_, ws[j]).c_str()),
                 ws[i], EdgeId::Invalid(), d);
          }
        }
        auto rit = readers.find(d);
        if (rit == readers.end()) continue;
        for (NodeId r : rit->second) {
          if (tree_->InDifferentParallelBranches(ws[i], r) &&
              !OrderedBySync(ws[i], r) && !OrderedBySync(r, ws[i])) {
            Warn(VerifyRule::kDataRace,
                 StrFormat("unsynchronized parallel write/read of '%s' "
                           "(%s writes, %s reads)",
                           name_of(d).c_str(),
                           NodeDesc(schema_, ws[i]).c_str(),
                           NodeDesc(schema_, r).c_str()),
                 ws[i], EdgeId::Invalid(), d);
          }
        }
      }
    }
  }

  void CheckNaming() {
    std::unordered_map<std::string, int> counts;
    for (const Node* n : nodes_) {
      if (n->type == NodeType::kActivity && !n->name.empty()) {
        counts[n->name]++;
      }
    }
    for (const auto& [name, count] : counts) {
      if (count > 1) {
        Warn(VerifyRule::kNaming,
             StrFormat("activity name '%s' used %d times", name.c_str(),
                       count));
      }
    }
  }

  const SchemaView& schema_;
  VerificationReport report_;
  std::vector<const Node*> nodes_;
  std::vector<const Edge*> edges_;
  std::vector<NodeId> topo_order_;
  bool control_acyclic_ = false;
  std::optional<BlockTree> tree_;
};

}  // namespace

bool VerificationReport::ok() const { return error_count() == 0; }

size_t VerificationReport::error_count() const {
  return static_cast<size_t>(
      std::count_if(issues_.begin(), issues_.end(), [](const auto& i) {
        return i.severity == VerifySeverity::kError;
      }));
}

size_t VerificationReport::warning_count() const {
  return issues_.size() - error_count();
}

std::string VerificationReport::FirstError() const {
  for (const auto& i : issues_) {
    if (i.severity == VerifySeverity::kError) return i.message;
  }
  return "";
}

std::string VerificationReport::DebugString() const {
  std::ostringstream os;
  for (const auto& i : issues_) {
    os << (i.severity == VerifySeverity::kError ? "ERROR" : "WARN") << " ["
       << VerifyRuleToString(i.rule) << "] " << i.message << "\n";
  }
  if (issues_.empty()) os << "clean\n";
  return os.str();
}

const char* VerifyRuleToString(VerifyRule rule) {
  switch (rule) {
    case VerifyRule::kStructure:
      return "structure";
    case VerifyRule::kControlCycle:
      return "control-cycle";
    case VerifyRule::kBlockNesting:
      return "block-nesting";
    case VerifyRule::kSyncEdge:
      return "sync-edge";
    case VerifyRule::kDeadlockCycle:
      return "deadlock-cycle";
    case VerifyRule::kDecision:
      return "decision";
    case VerifyRule::kMissingData:
      return "missing-data";
    case VerifyRule::kLostUpdate:
      return "lost-update";
    case VerifyRule::kDataRace:
      return "data-race";
    case VerifyRule::kNaming:
      return "naming";
  }
  return "?";
}

VerificationReport VerifySchema(const SchemaView& schema) {
  return VerifyPass(schema).Run();
}

Status VerifySchemaOrError(const SchemaView& schema) {
  VerificationReport report = VerifySchema(schema);
  if (report.ok()) return Status::OK();
  return Status::VerificationFailed(report.FirstError());
}

}  // namespace adept
