// Runtime-health linting over *recovered instance state*.
//
// The schema verifier (verifier.h) proves a process model sound before it
// runs; these rules look at the other half — what execution left behind.
// They extend the same AV-id catalog (report format, suppression
// baselines, adept_lint plumbing all shared):
//
//   AV011 stuck-activity   An activity is in the Running state but the
//                          instance's trace kept growing without any
//                          progress on it: at least
//                          StateLintOptions::stuck_after_events events
//                          were appended after the activity's last start.
//                          Long-running steps are legal, so this is a
//                          warning — but a worker that died mid-activity
//                          looks exactly like this.
//   AV012 orphaned-claim   The worklist claim journal holds a live claim
//                          (claimed or started, never released/closed)
//                          whose activity is no longer Activated or
//                          Running — the node completed, was skipped, or
//                          its instance is gone. The claim can never be
//                          finished by its owner; release it.
//   AV013 replication-     A shard of a ClusterReplicationStatus dump
//         degraded         cannot commit: fenced by a newer epoch (error —
//                          this lineage was deposed, stop routing writes
//                          to it) or below its live quorum (warning —
//                          writes fail fast, reads serve degraded; lists
//                          each non-alive peer with its silence). Fed by
//                          adept_lint --repl-status FILE, where FILE holds
//                          AdeptCluster::ReplicationStatus().ToJson().
//
// Both rules read a quiesced system (a recovered one, or one the caller
// is not concurrently mutating); they take the engine lock through the
// caller, not themselves. adept_lint --state runs them after recovery and
// appends the findings to its JSON report under "runtime".

#ifndef ADEPT_VERIFY_STATE_LINT_H_
#define ADEPT_VERIFY_STATE_LINT_H_

#include <cstdint>
#include <string>

#include "runtime/engine.h"
#include "verify/verifier.h"

namespace adept {

struct StateLintOptions {
  // AV011 fires when a Running activity saw this many trace events appended
  // after its last start without completing/failing/retrying.
  size_t stuck_after_events = 8;
  // Worklist claim journal to replay for AV012 (the cluster writes it at
  // "<wal_path>.worklist"). Empty: skip the claim rule.
  std::string claims_journal_path;
  // JSON file holding a ClusterReplicationStatus dump for AV013. Empty:
  // skip the replication rule.
  std::string repl_status_path;
};

// Lints every instance of `engine` (and the claim journal / replication
// status, if configured). Findings are deterministic: ordered by instance
// id, then node id; AV013 findings by shard.
Result<VerificationReport> LintRuntimeState(const Engine& engine,
                                            const StateLintOptions& options);

// AV013 over one parsed ClusterReplicationStatus document (what
// AdeptCluster::ReplicationStatus().ToJson() produces). Exposed directly
// so a live cluster can be linted without a round-trip through a file.
void LintReplicationStatus(const JsonValue& status,
                           VerificationReport* report);

}  // namespace adept

#endif  // ADEPT_VERIFY_STATE_LINT_H_
