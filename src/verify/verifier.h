// Buildtime schema verification.
//
// ADEPT2 "ensures schema correctness, like the absence of deadlock-causing
// cycles or erroneous data flows. This, in turn, constitutes an important
// prerequisite for dynamic process changes" (paper, Sec. 2). The verifier
// re-checks every candidate schema produced by the change framework — both
// new type versions and instance-specific schemas of biased instances — so
// a change that would break a buildtime guarantee is rejected up front
// (Fig. 1: I2's structural conflict is exactly a kDeadlockCycle finding on
// the combined schema).
//
// Checks performed:
//   * node-degree rules per node type, unique start/end flow
//   * control-edge acyclicity and full block-structure parse
//   * sync-edge rules: endpoints in different branches of a common parallel
//     block, same loop context, and no cycle over control+sync edges
//     ("deadlock-causing cycle")
//   * XOR/loop decision wiring (decision data present, branch codes unique)
//   * data-flow: every mandatory read is guaranteed a prior write on every
//     path ("no missing data"); warnings for parallel write/write and
//     unsynchronized write/read races ("lost updates")

#ifndef ADEPT_VERIFY_VERIFIER_H_
#define ADEPT_VERIFY_VERIFIER_H_

#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "model/schema_view.h"

namespace adept {

enum class VerifyRule {
  kStructure,       // degree / start / end / unreachable node problems
  kControlCycle,    // cycle over control edges
  kBlockNesting,    // block structure does not parse
  kSyncEdge,        // illegal sync edge placement
  kDeadlockCycle,   // cycle over control + sync edges
  kDecision,        // XOR/loop decision wiring problems
  kMissingData,     // mandatory read without guaranteed prior write
  kLostUpdate,      // parallel write/write on the same element
  kDataRace,        // unsynchronized parallel write/read
  kNaming,          // duplicate names (warning only)
};

enum class VerifySeverity { kError, kWarning };

struct VerificationIssue {
  VerifyRule rule;
  VerifySeverity severity;
  std::string message;
  NodeId node;  // primary offending entity (optional)
  EdgeId edge;
  DataId data;
};

class VerificationReport {
 public:
  void Add(VerificationIssue issue) { issues_.push_back(std::move(issue)); }

  const std::vector<VerificationIssue>& issues() const { return issues_; }

  bool ok() const;  // no kError issues
  size_t error_count() const;
  size_t warning_count() const;

  // First error message, or "" when ok().
  std::string FirstError() const;

  std::string DebugString() const;

 private:
  std::vector<VerificationIssue> issues_;
};

const char* VerifyRuleToString(VerifyRule rule);

// Runs all checks; never fails by itself (problems land in the report).
VerificationReport VerifySchema(const SchemaView& schema);

// Convenience: kVerificationFailed carrying the first error, OK otherwise.
Status VerifySchemaOrError(const SchemaView& schema);

}  // namespace adept

#endif  // ADEPT_VERIFY_VERIFIER_H_
