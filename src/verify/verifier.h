// Buildtime schema verification.
//
// ADEPT2 "ensures schema correctness, like the absence of deadlock-causing
// cycles or erroneous data flows. This, in turn, constitutes an important
// prerequisite for dynamic process changes" (paper, Sec. 2). The verifier
// re-checks every candidate schema produced by the change framework — both
// new type versions and instance-specific schemas of biased instances — so
// a change that would break a buildtime guarantee is rejected up front
// (Fig. 1: I2's structural conflict is exactly a kDeadlockCycle finding on
// the combined schema).
//
// Checks performed (rule catalog in src/verify/README.md):
//   * node-degree rules per node type, unique start/end flow
//   * control-edge acyclicity and full block-structure parse
//   * sync-edge rules: endpoints in different branches of a common parallel
//     block, same loop context, and no cycle over control+sync edges
//     ("deadlock-causing cycle")
//   * XOR/loop decision wiring (decision data present, branch codes unique)
//   * data-flow: every mandatory read is guaranteed a prior write on every
//     path ("no missing data"); warnings for parallel write/write and
//     unsynchronized write/read races ("lost updates")
//
// Verification is summary-based and incremental: VerifySchema here is the
// convenience entry point that analyzes from scratch; change transactions
// go through verify/analysis.h, which caches per-block summaries and
// re-analyzes only the blocks a ChangeOp touched.

#ifndef ADEPT_VERIFY_VERIFIER_H_
#define ADEPT_VERIFY_VERIFIER_H_

#include <string>
#include <vector>

#include "common/ids.h"
#include "common/json.h"
#include "common/status.h"
#include "model/schema_view.h"

namespace adept {

enum class VerifyRule {
  kStructure,       // degree / start / end / unreachable node problems
  kControlCycle,    // cycle over control edges
  kBlockNesting,    // block structure does not parse
  kSyncEdge,        // illegal sync edge placement
  kDeadlockCycle,   // cycle over control + sync edges
  kDecision,        // XOR/loop decision wiring problems
  kMissingData,     // mandatory read without guaranteed prior write
  kLostUpdate,      // parallel write/write on the same element
  kDataRace,        // unsynchronized parallel write/read
  kNaming,          // duplicate names (warning only)
  // Runtime-health rules (verify/state_lint.h): linted over *recovered
  // instance state*, not schemas. Appended here so the AV-id space and
  // report plumbing stay one catalog.
  kStuckActivity,   // running activity with no progress in the trace tail
  kOrphanedClaim,   // live worklist claim on a node no longer activated
  // Replication-health rule: linted over a ClusterReplicationStatus dump
  // (a shard's primary is fenced or below its live quorum, so writes are
  // failing fast while reads serve degraded).
  kReplicationDegraded,
};

enum class VerifySeverity { kError, kWarning };

// Reference to one schema entity involved in a finding. A finding's `span`
// lists every entity a tool would highlight: the sync edge *and* both of
// its endpoints, the reader *and* the data element, each node on a
// deadlock cycle.
struct EntitySpan {
  enum class Kind { kNode, kEdge, kData };
  Kind kind = Kind::kNode;
  uint32_t id = 0;

  static EntitySpan Node(NodeId n) { return {Kind::kNode, n.value()}; }
  static EntitySpan Edge(EdgeId e) { return {Kind::kEdge, e.value()}; }
  static EntitySpan Data(DataId d) { return {Kind::kData, d.value()}; }

  bool operator==(const EntitySpan& o) const {
    return kind == o.kind && id == o.id;
  }
  bool operator<(const EntitySpan& o) const {
    if (kind != o.kind) return kind < o.kind;
    return id < o.id;
  }
};

struct VerificationIssue {
  VerifyRule rule;
  VerifySeverity severity;
  std::string message;
  NodeId node;  // primary offending entity (optional)
  EdgeId edge;
  DataId data;
  // Machine-consumable detail: every involved entity, and an actionable
  // suggestion ("add a sync edge ordering the writers").
  std::vector<EntitySpan> span;
  std::string fix_hint;

  JsonValue ToJson() const;
};

class VerificationReport {
 public:
  void Add(VerificationIssue issue) { issues_.push_back(std::move(issue)); }

  const std::vector<VerificationIssue>& issues() const { return issues_; }

  bool ok() const;  // no kError issues
  size_t error_count() const;
  size_t warning_count() const;

  // First error message, or "" when ok().
  std::string FirstError() const;

  std::string DebugString() const;

  // Full machine-readable report: {"ok":…,"errors":N,"warnings":N,
  // "findings":[issue…]} with stable rule ids (the adept_lint format).
  JsonValue ToJson() const;

  // Order-independent fingerprint: every issue rendered canonically and
  // sorted. Two reports describe the same findings iff their canonical
  // strings are equal (the incremental-vs-full differential contract).
  std::string CanonicalString() const;

 private:
  std::vector<VerificationIssue> issues_;
};

const char* VerifyRuleToString(VerifyRule rule);

// Stable machine-readable rule id ("AV001".."AV010"); ids are append-only
// and never reused, so downstream suppressions/baselines survive upgrades.
const char* VerifyRuleId(VerifyRule rule);

// Runs all checks; never fails by itself (problems land in the report).
VerificationReport VerifySchema(const SchemaView& schema);

// Convenience: kVerificationFailed carrying the first error, OK otherwise.
// NOTE: this discards warnings by design — callers that must surface or
// retain warnings (Deploy/Evolve/AddBias) use Delta::ApplyVerified or
// AnalyzeSchema and keep the full report.
Status VerifySchemaOrError(const SchemaView& schema);

}  // namespace adept

#endif  // ADEPT_VERIFY_VERIFIER_H_
