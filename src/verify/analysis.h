// Incremental, summary-based schema analysis.
//
// VerifySchema (verifier.h) is a fold over the schema's BlockTree: every
// block caches a BlockSummary — the data elements one execution of the
// block is guaranteed to write (gen set), the mandatory reads its own
// prefix could not satisfy (pending reads), the data occurrences of its
// subtree (for race analysis), and the issues fully attributable to the
// block (degree rules of direct members, decision wiring, parallel race
// warnings owned by the block as the writers' least common ancestor).
// Summaries are context-independent: they depend only on the block's
// subtree, never on what surrounds it, so they can be reused verbatim
// across schema versions.
//
// AnalyzeDelta exploits that: given the base version's SchemaAnalysis and
// the ChangeRegion a delta touched, only the blocks containing region
// nodes — plus their ancestors, whose compositions consume the changed
// summaries — are recomputed; every other block is matched against the
// base analysis by its (kind, entry, exit) identity (node ids are stable
// across versions) and its summary is shared. Cheap whole-schema facts
// (sync-edge legality, deadlock cycles over sync-owning blocks, start/end
// uniqueness, missing-data resolution at the root, duplicate names) are
// recomputed on every analysis; they are O(edges + blocks), not O(nodes²).
// Full analysis is literally the all-blocks-dirty delta, so the two paths
// produce identical reports by construction (tests/verify_fuzz_test.cc
// checks this over randomized change sequences).
//
// The invalidation contract is documented in src/verify/README.md.

#ifndef ADEPT_VERIFY_ANALYSIS_H_
#define ADEPT_VERIFY_ANALYSIS_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "verify/verifier.h"

namespace adept {

// The part of a schema a change transaction may have re-analyzed: the
// nodes whose structural or data context changed (targets, pre-change
// neighborhoods, created nodes), and data elements that came into
// existence (they can resolve previously dangling decision references).
// Writer-set changes need no separate tracking: a changed writer dirties
// its block chain up to the root, and pending-read re-resolution at those
// ancestors re-checks every reader the change could affect.
struct ChangeRegion {
  // Force full re-analysis regardless of the node set.
  bool full = false;
  std::vector<NodeId> nodes;
  std::vector<DataId> data;

  void AddNode(NodeId n) {
    if (n.valid()) nodes.push_back(n);
  }
  void AddData(DataId d) {
    if (d.valid()) data.push_back(d);
  }
};

namespace internal {
struct BlockSummary;
}  // namespace internal

// Cached per-block summaries of one analyzed schema. Opaque to callers;
// keep it next to the schema it describes and hand it to AnalyzeDelta when
// verifying a derived candidate. Immutable and shareable across threads.
class SchemaAnalysis {
 public:
  struct Stats {
    size_t blocks_total = 0;
    size_t blocks_reused = 0;  // summaries shared from the base analysis
    // False when the block structure did not parse: the analysis ran in
    // degenerate whole-schema mode and cannot seed an incremental delta.
    bool incremental = false;
  };

  const Stats& stats() const { return stats_; }
  bool incremental() const { return stats_.incremental; }

 private:
  friend class AnalysisPass;

  // Identity of a block across schema versions: entity ids are stable, so
  // (kind, entry, exit) identifies "the same block" in base and candidate.
  // parent_entry disambiguates empty branches (invalid entry/exit) of
  // different composites; it is invalid for non-branch blocks so that a
  // composite moved wholesale into a new context still matches.
  struct BlockKey {
    uint8_t kind = 0;
    uint32_t entry = 0;
    uint32_t exit = 0;
    uint32_t parent_entry = 0;

    bool operator==(const BlockKey& o) const {
      return kind == o.kind && entry == o.entry && exit == o.exit &&
             parent_entry == o.parent_entry;
    }
  };
  struct BlockKeyHash {
    size_t operator()(const BlockKey& k) const {
      uint64_t h = k.kind;
      h = h * 0x9e3779b97f4a7c15ULL + k.entry;
      h = h * 0x9e3779b97f4a7c15ULL + k.exit;
      h = h * 0x9e3779b97f4a7c15ULL + k.parent_entry;
      return static_cast<size_t>(h);
    }
  };

  std::unordered_map<BlockKey, std::shared_ptr<const internal::BlockSummary>,
                     BlockKeyHash>
      summaries_;
  Stats stats_;
};

struct AnalysisResult {
  VerificationReport report;
  std::shared_ptr<const SchemaAnalysis> analysis;
};

// Analyzes a schema from scratch. Reuses the schema's frozen BlockTree
// when `schema` is a frozen ProcessSchema; otherwise parses one.
AnalysisResult AnalyzeSchema(const SchemaView& schema);

// Analyzes `candidate` (derived from the schema `base` describes by a
// change transaction with the given affected region), reusing base block
// summaries outside the region. Falls back to full analysis when the base
// ran in degenerate mode or region.full is set. The resulting report is
// bit-identical to AnalyzeSchema(candidate).
AnalysisResult AnalyzeDelta(const SchemaAnalysis& base,
                            const SchemaView& candidate,
                            const ChangeRegion& region);

}  // namespace adept

#endif  // ADEPT_VERIFY_ANALYSIS_H_
