#include "verify/analysis.h"

#include <algorithm>
#include <deque>
#include <map>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/string_util.h"
#include "model/block_tree.h"
#include "model/node.h"
#include "model/schema.h"

namespace adept {

namespace internal {

// Context-independent facts about one block's subtree. Everything in here
// depends only on the subtree's own nodes and edges — never on what
// surrounds the block — which is what makes a summary reusable when the
// block reappears unchanged in a derived schema version.
struct BlockSummary {
  // Why a data element must be readable at a node.
  enum class Why : uint8_t { kInput, kDecision, kLoopCondition };

  struct PendingRead {
    NodeId node;
    DataId data;
    Why why;
  };

  // One data edge of a subtree node, in composition order.
  struct Occurrence {
    DataId data;
    NodeId node;
    bool write;
  };

  // Data surely written by one execution of the block (sorted, unique).
  std::vector<DataId> gen;
  // Mandatory uses no prefix inside the block could satisfy; resolved (or
  // reported) during ancestor composition.
  std::vector<PendingRead> pending;
  // All subtree data accesses; parallel blocks derive race pairs from the
  // per-branch partition of this list.
  std::vector<Occurrence> occurrences;
  // Names of direct activity members (for the duplicate-name fold). The
  // hash is computed once at summary build time so clean blocks never pay
  // for string hashing again.
  struct NameRef {
    std::string name;
    uint64_t hash = 0;
    NodeId node;
  };
  std::vector<NameRef> names;
  // Decision/loop-condition elements referenced by the entry/exit. Cached
  // wiring issues go stale if such an element comes into existence, so
  // AnalyzeDelta re-dirties blocks whose refs intersect region.data.
  std::vector<DataId> decision_refs;
  // Direct start-/end-flow members (uniqueness is a whole-schema fold).
  int starts = 0;
  int ends = 0;
  // Issues fully attributable to this block: degree rules of direct
  // members, decision wiring, race warnings owned by this parallel block.
  std::vector<VerificationIssue> issues;
};

}  // namespace internal

namespace {

using internal::BlockSummary;
using BlockKind = BlockTree::BlockKind;
using Why = BlockSummary::Why;

std::string NodeDesc(const SchemaView& schema, NodeId id) {
  const Node* n = schema.FindNode(id);
  if (n == nullptr) return "<missing>";
  if (n->name.empty()) return NodeTypeToString(n->type);
  return n->name;
}

std::string DataName(const SchemaView& schema, DataId id) {
  const DataElement* e = schema.FindData(id);
  return e != nullptr ? e->name : std::string("?");
}

const char* WhyString(Why why) {
  switch (why) {
    case Why::kInput:
      return "mandatory input";
    case Why::kDecision:
      return "decision parameter";
    case Why::kLoopCondition:
      return "loop condition";
  }
  return "?";
}

VerificationIssue Issue(VerifyRule rule, VerifySeverity severity,
                        std::string message, std::string fix_hint,
                        NodeId node = NodeId::Invalid(),
                        EdgeId edge = EdgeId::Invalid(),
                        DataId data = DataId::Invalid()) {
  VerificationIssue issue{rule,          severity, std::move(message), node,
                          edge,          data,     {},
                          std::move(fix_hint)};
  if (node.valid()) issue.span.push_back(EntitySpan::Node(node));
  if (edge.valid()) issue.span.push_back(EntitySpan::Edge(edge));
  if (data.valid()) issue.span.push_back(EntitySpan::Data(data));
  return issue;
}

}  // namespace

// The analysis engine. Full analysis and delta analysis share one code
// path (full = every block dirty), which is what guarantees identical
// reports between the two modes.
class AnalysisPass {
 public:
  explicit AnalysisPass(const SchemaView& schema) : schema_(schema) {}

  AnalysisResult Run(const SchemaAnalysis* base, const ChangeRegion* region) {
    // Prefer the tree the schema already parsed at Freeze(); candidates
    // produced by Delta::ApplyRaw always have one, so the incremental path
    // pays no parse cost.
    const BlockTree* tree = nullptr;
    std::optional<BlockTree> local_tree;
    Status tree_error = Status::OK();
    const auto* frozen = dynamic_cast<const ProcessSchema*>(&schema_);
    if (frozen != nullptr && frozen->frozen()) {
      auto t = frozen->block_tree();
      if (t.ok()) {
        tree = *t;
      } else {
        tree_error = t.status();
      }
    } else {
      auto t = BlockTree::Build(schema_);
      if (t.ok()) {
        local_tree = std::move(t).value();
        tree = &*local_tree;
      } else {
        tree_error = t.status();
      }
    }
    if (tree == nullptr) return RunDegenerate(tree_error);
    return RunOnTree(*tree, base, region);
  }

 private:
  using Summary = std::shared_ptr<const BlockSummary>;

  // --- structured (block tree) mode ----------------------------------------

  AnalysisResult RunOnTree(const BlockTree& tree, const SchemaAnalysis* base,
                           const ChangeRegion* region) {
    const size_t nblocks = tree.size();
    std::vector<Summary> summaries(nblocks);
    std::vector<char> dirty(nblocks, 1);

    const bool use_cache = base != nullptr && base->stats_.incremental &&
                           region != nullptr && !region->full;
    if (use_cache) {
      std::fill(dirty.begin(), dirty.end(), 0);
      for (NodeId n : region->nodes) {
        auto b = tree.BlockOfNode(n);
        if (!b.ok()) continue;  // node no longer exists in the candidate
        MarkDirtyChain(tree, dirty, *b);
      }
    }

    size_t reused = 0;
    for (int i = static_cast<int>(nblocks) - 1; i >= 0; --i) {
      if (!dirty[i]) {
        auto it = base->summaries_.find(KeyOf(tree, i));
        if (it != base->summaries_.end() &&
            !RefsDirty(*it->second, region->data)) {
          summaries[i] = it->second;
          ++reused;
          continue;
        }
        if (it == base->summaries_.end()) {
          // Structure changed without a region node inside — should not
          // happen with correct op regions, but recompute the enclosing
          // compositions too rather than trust stale aggregates.
          MarkDirtyChain(tree, dirty, tree.block(i).parent);
        }
      }
      // Children carry higher indices than their parent, so they are
      // already computed when the parent composes them.
      summaries[i] = ComputeSummary(tree, i, summaries);
    }

    VerificationReport report = AssembleReport(tree, summaries);

    auto analysis = std::make_shared<SchemaAnalysis>();
    analysis->stats_.blocks_total = nblocks;
    analysis->stats_.blocks_reused = reused;
    analysis->stats_.incremental = true;
    analysis->summaries_.reserve(nblocks);
    for (size_t i = 0; i < nblocks; ++i) {
      analysis->summaries_.emplace(KeyOf(tree, static_cast<int>(i)),
                                   summaries[i]);
    }
    return {std::move(report), std::move(analysis)};
  }

  static void MarkDirtyChain(const BlockTree& tree, std::vector<char>& dirty,
                             int block) {
    for (int cur = block; cur >= 0 && !dirty[cur];
         cur = tree.block(cur).parent) {
      dirty[cur] = 1;
    }
  }

  static SchemaAnalysis::BlockKey KeyOf(const BlockTree& tree, int index) {
    const BlockTree::Block& b = tree.block(index);
    SchemaAnalysis::BlockKey key;
    key.kind = static_cast<uint8_t>(b.kind);
    key.entry = b.entry.value();
    key.exit = b.exit.value();
    key.parent_entry = (b.kind == BlockKind::kBranch && b.parent >= 0)
                           ? tree.block(b.parent).entry.value()
                           : NodeId::Invalid().value();
    return key;
  }

  static bool RefsDirty(const BlockSummary& summary,
                        const std::vector<DataId>& region_data) {
    if (region_data.empty() || summary.decision_refs.empty()) return false;
    for (DataId ref : summary.decision_refs) {
      for (DataId d : region_data) {
        if (ref == d) return true;
      }
    }
    return false;
  }

  Summary ComputeSummary(const BlockTree& tree, int index,
                         const std::vector<Summary>& summaries) {
    const BlockTree::Block& b = tree.block(index);
    if (b.kind == BlockKind::kRoot || b.kind == BlockKind::kBranch) {
      return ComputeSequenceSummary(tree, index, summaries);
    }
    return ComputeCompositeSummary(tree, index, summaries);
  }

  // Root/branch blocks: fold the sequence left to right. `avail` tracks
  // the data surely written by the block-internal prefix; reads the prefix
  // cannot satisfy bubble up as pending and are re-resolved (against the
  // surrounding context) by the ancestor compositions.
  Summary ComputeSequenceSummary(const BlockTree& tree, int index,
                                 const std::vector<Summary>& summaries) {
    const BlockTree::Block& b = tree.block(index);
    auto s = std::make_shared<BlockSummary>();
    std::unordered_set<uint32_t> avail;
    for (const BlockTree::SequenceItem& item : b.sequence) {
      if (item.composite_block >= 0) {
        const BlockSummary& child = *summaries[item.composite_block];
        for (const auto& p : child.pending) {
          if (avail.count(p.data.value()) == 0) s->pending.push_back(p);
        }
        for (DataId d : child.gen) avail.insert(d.value());
        if (b.kind != BlockKind::kRoot) {
          s->occurrences.insert(s->occurrences.end(),
                                child.occurrences.begin(),
                                child.occurrences.end());
        }
      } else {
        const Node* n = schema_.FindNode(item.node);
        if (n == nullptr) continue;  // impossible on frozen schemas
        CheckMember(*n, *s);
        FoldNodeDataFlow(*n, avail, *s,
                         /*record_occurrences=*/b.kind != BlockKind::kRoot);
      }
    }
    StoreGen(avail, *s);
    return s;
  }

  // Composite blocks (AND/XOR/loop): entry, then the branches against the
  // entry's writes only (branches do not feed each other), then the
  // branch-combine (union for AND, intersection for XOR, the body for a
  // loop — one iteration always runs), then the exit.
  Summary ComputeCompositeSummary(const BlockTree& tree, int index,
                                  const std::vector<Summary>& summaries) {
    const BlockTree::Block& b = tree.block(index);
    auto s = std::make_shared<BlockSummary>();
    std::unordered_set<uint32_t> avail;

    const Node* entry = schema_.FindNode(b.entry);
    if (entry != nullptr) {
      CheckMember(*entry, *s);
      FoldNodeDataFlow(*entry, avail, *s, /*record_occurrences=*/true);
    }

    // Resolve every branch's pending reads against the entry's writes
    // before any gen set is merged: sibling branches run independently.
    for (int child : b.children) {
      const BlockSummary& cs = *summaries[child];
      for (const auto& p : cs.pending) {
        if (avail.count(p.data.value()) == 0) s->pending.push_back(p);
      }
      s->occurrences.insert(s->occurrences.end(), cs.occurrences.begin(),
                            cs.occurrences.end());
    }
    if (b.kind == BlockKind::kParallel) {
      for (int child : b.children) {
        for (DataId d : summaries[child]->gen) avail.insert(d.value());
      }
    } else if (b.kind == BlockKind::kConditional) {
      std::vector<DataId> combined;
      bool first = true;
      for (int child : b.children) {
        const std::vector<DataId>& g = summaries[child]->gen;
        if (first) {
          combined = g;
          first = false;
        } else {
          std::vector<DataId> next;
          next.reserve(combined.size());
          for (DataId d : combined) {
            if (std::binary_search(g.begin(), g.end(), d)) next.push_back(d);
          }
          combined = std::move(next);
        }
      }
      for (DataId d : combined) avail.insert(d.value());
    } else {  // kLoop: the body executes at least once
      for (int child : b.children) {
        for (DataId d : summaries[child]->gen) avail.insert(d.value());
      }
    }

    const Node* exit = schema_.FindNode(b.exit);
    if (exit != nullptr) {
      CheckMember(*exit, *s);
      FoldNodeDataFlow(*exit, avail, *s, /*record_occurrences=*/true);
    }
    StoreGen(avail, *s);

    if (b.kind == BlockKind::kParallel) CheckRaces(tree, index, summaries, *s);
    return s;
  }

  static void StoreGen(const std::unordered_set<uint32_t>& avail,
                       BlockSummary& s) {
    s.gen.reserve(avail.size());
    for (uint32_t v : avail) s.gen.push_back(DataId(v));
    std::sort(s.gen.begin(), s.gen.end());
  }

  // Degree rules, decision wiring, name/start/end bookkeeping for a node
  // that is a *direct* member of the block under computation. Also used by
  // the degenerate (flat) mode with a single scratch summary.
  void CheckMember(const Node& n, BlockSummary& s) {
    CheckMemberDegrees(n, s);
    CheckMemberDecision(n, s);
    if (n.type == NodeType::kActivity && !n.name.empty()) {
      s.names.push_back(
          {n.name, std::hash<std::string_view>{}(n.name), n.id});
    }
  }

  void CheckMemberDegrees(const Node& n, BlockSummary& s) {
    int in_control = 0, out_control = 0;
    int in_sync = 0, out_sync = 0;
    int in_loop = 0, out_loop = 0;
    schema_.VisitInEdges(n.id, [&](const Edge& e) {
      switch (e.type) {
        case EdgeType::kControl:
          in_control++;
          break;
        case EdgeType::kSync:
          in_sync++;
          break;
        case EdgeType::kLoop:
          in_loop++;
          break;
      }
    });
    schema_.VisitOutEdges(n.id, [&](const Edge& e) {
      switch (e.type) {
        case EdgeType::kControl:
          out_control++;
          break;
        case EdgeType::kSync:
          out_sync++;
          break;
        case EdgeType::kLoop:
          out_loop++;
          break;
      }
    });
    auto expect = [&](bool cond, const std::string& what) {
      if (!cond) {
        s.issues.push_back(Issue(
            VerifyRule::kStructure, VerifySeverity::kError,
            NodeDesc(schema_, n.id) + ": " + what,
            "restructure the control edges to satisfy the node type's "
            "degree rules",
            n.id));
      }
    };
    switch (n.type) {
      case NodeType::kStartFlow:
        ++s.starts;
        expect(in_control == 0,
               "start-flow must have no incoming control edge");
        expect(out_control == 1,
               "start-flow must have exactly one outgoing control edge");
        expect(in_sync == 0 && out_sync == 0,
               "start-flow must not touch sync edges");
        expect(in_loop == 0 && out_loop == 0,
               "start-flow must not touch loop edges");
        break;
      case NodeType::kEndFlow:
        ++s.ends;
        expect(in_control == 1,
               "end-flow must have exactly one incoming control edge");
        expect(out_control == 0,
               "end-flow must have no outgoing control edge");
        expect(in_sync == 0 && out_sync == 0,
               "end-flow must not touch sync edges");
        expect(in_loop == 0 && out_loop == 0,
               "end-flow must not touch loop edges");
        break;
      case NodeType::kActivity:
        expect(in_control == 1,
               "activity must have exactly one incoming control edge");
        expect(out_control == 1,
               "activity must have exactly one outgoing control edge");
        expect(in_loop == 0 && out_loop == 0,
               "activity must not touch loop edges");
        break;
      case NodeType::kAndSplit:
      case NodeType::kXorSplit:
        expect(in_control == 1,
               "split must have exactly one incoming control edge");
        expect(out_control >= 2,
               "split must have >= 2 outgoing control edges");
        expect(in_loop == 0 && out_loop == 0,
               "split must not touch loop edges");
        break;
      case NodeType::kAndJoin:
      case NodeType::kXorJoin:
        expect(in_control >= 2,
               "join must have >= 2 incoming control edges");
        expect(out_control == 1,
               "join must have exactly one outgoing control edge");
        expect(in_loop == 0 && out_loop == 0,
               "join must not touch loop edges");
        break;
      case NodeType::kLoopStart:
        expect(in_control == 1,
               "loop start must have exactly one incoming control edge");
        expect(out_control == 1, "loop start must have exactly one body branch");
        expect(in_loop == 1,
               "loop start must have exactly one incoming loop edge");
        expect(out_loop == 0, "loop start must have no outgoing loop edge");
        break;
      case NodeType::kLoopEnd:
        expect(in_control == 1,
               "loop end must have exactly one incoming control edge");
        expect(out_control == 1,
               "loop end must have exactly one outgoing control edge");
        expect(out_loop == 1,
               "loop end must have exactly one outgoing loop edge");
        expect(in_loop == 0, "loop end must have no incoming loop edge");
        break;
    }
  }

  void CheckMemberDecision(const Node& n, BlockSummary& s) {
    if (n.type == NodeType::kXorSplit) {
      if (!n.decision_data.valid()) {
        s.issues.push_back(Issue(
            VerifyRule::kDecision, VerifySeverity::kWarning,
            NodeDesc(schema_, n.id) +
                ": XOR split without decision data element (requires "
                "explicit runtime branch selection)",
            "assign an int decision data element to the XOR split", n.id));
      } else {
        s.decision_refs.push_back(n.decision_data);
        const DataElement* d = schema_.FindData(n.decision_data);
        if (d == nullptr) {
          s.issues.push_back(Issue(
              VerifyRule::kDecision, VerifySeverity::kError,
              NodeDesc(schema_, n.id) + ": decision data element missing",
              "add the referenced decision data element or re-wire the split",
              n.id, EdgeId::Invalid(), n.decision_data));
        } else if (d->type != DataType::kInt) {
          s.issues.push_back(Issue(
              VerifyRule::kDecision, VerifySeverity::kError,
              NodeDesc(schema_, n.id) +
                  ": decision data element must be int, is " +
                  DataTypeToString(d->type),
              "change the decision data element's type to int", n.id,
              EdgeId::Invalid(), d->id));
        }
      }
      std::unordered_set<int> seen;
      schema_.VisitOutEdges(n.id, [&](const Edge& e) {
        if (e.type != EdgeType::kControl) return;
        if (!seen.insert(e.branch_value).second) {
          s.issues.push_back(Issue(
              VerifyRule::kDecision, VerifySeverity::kError,
              StrFormat("%s: duplicate branch selection code %d",
                        NodeDesc(schema_, n.id).c_str(), e.branch_value),
              "assign a unique selection code to each outgoing branch", n.id,
              e.id));
        }
      });
    } else if (n.type == NodeType::kLoopEnd) {
      if (!n.loop_data.valid()) {
        s.issues.push_back(Issue(
            VerifyRule::kDecision, VerifySeverity::kWarning,
            NodeDesc(schema_, n.id) +
                ": loop end without condition data element (defaults to "
                "single iteration)",
            "assign a bool condition data element to the loop end", n.id));
      } else {
        s.decision_refs.push_back(n.loop_data);
        const DataElement* d = schema_.FindData(n.loop_data);
        if (d == nullptr) {
          s.issues.push_back(Issue(
              VerifyRule::kDecision, VerifySeverity::kError,
              NodeDesc(schema_, n.id) + ": loop data element missing",
              "add the referenced loop condition element or re-wire the "
              "loop end",
              n.id, EdgeId::Invalid(), n.loop_data));
        } else if (d->type != DataType::kBool) {
          s.issues.push_back(Issue(
              VerifyRule::kDecision, VerifySeverity::kError,
              NodeDesc(schema_, n.id) +
                  ": loop condition element must be bool, is " +
                  DataTypeToString(d->type),
              "change the loop condition element's type to bool", n.id,
              EdgeId::Invalid(), d->id));
        }
      }
    }
  }

  // Resolves the node's mandatory uses against `avail` (the data written
  // before the node within the current composition scope), then merges its
  // writes — a node's own writes never satisfy its own reads.
  void FoldNodeDataFlow(const Node& n, std::unordered_set<uint32_t>& avail,
                        BlockSummary& s, bool record_occurrences) {
    schema_.VisitDataEdges(n.id, [&](const DataEdge& de) {
      if (de.mode != AccessMode::kRead) return;
      if (record_occurrences) s.occurrences.push_back({de.data, n.id, false});
      if (!de.optional && avail.count(de.data.value()) == 0) {
        s.pending.push_back({n.id, de.data, Why::kInput});
      }
    });
    if (n.type == NodeType::kXorSplit && n.decision_data.valid() &&
        avail.count(n.decision_data.value()) == 0) {
      s.pending.push_back({n.id, n.decision_data, Why::kDecision});
    }
    if (n.type == NodeType::kLoopEnd && n.loop_data.valid() &&
        avail.count(n.loop_data.value()) == 0) {
      s.pending.push_back({n.id, n.loop_data, Why::kLoopCondition});
    }
    schema_.VisitDataEdges(n.id, [&](const DataEdge& de) {
      if (de.mode != AccessMode::kWrite) return;
      if (record_occurrences) s.occurrences.push_back({de.data, n.id, true});
      avail.insert(de.data.value());
    });
  }

  // Race analysis owned by parallel block `index`: a write/write or
  // write/read pair is flagged here iff this block is the least common
  // ancestor of the pair (the accesses sit in *different direct branches*),
  // which partitions the old whole-schema pairwise check exactly.
  void CheckRaces(const BlockTree& tree, int index,
                  const std::vector<Summary>& summaries, BlockSummary& s) {
    const BlockTree::Block& b = tree.block(index);
    struct Access {
      int branch;
      NodeId node;
    };
    struct DataAccesses {
      std::vector<Access> writers;
      std::vector<Access> readers;
      int first_branch = -1;  // branch of the first access of either kind
    };
    std::map<uint32_t, DataAccesses> by_data;  // deterministic order
    bool cross_possible = false;
    for (size_t bi = 0; bi < b.children.size(); ++bi) {
      for (const auto& occ : summaries[b.children[bi]]->occurrences) {
        auto& entry = by_data[occ.data.value()];
        if (entry.first_branch == -1) {
          entry.first_branch = static_cast<int>(bi);
        } else if (entry.first_branch != static_cast<int>(bi)) {
          cross_possible = true;
        }
        auto& list = occ.write ? entry.writers : entry.readers;
        list.push_back({static_cast<int>(bi), occ.node});
      }
    }
    if (!cross_possible) return;

    // Sync-path reachability is bounded to this block's subtree: legal
    // sync edges never leave it, and control flow exits only via the join.
    std::optional<std::unordered_set<NodeId>> members;
    auto ordered = [&](NodeId a, NodeId to) {
      if (!members) {
        members.emplace();
        for (NodeId m : tree.NodesIn(index)) members->insert(m);
      }
      return OrderedBySync(a, to, *members);
    };
    auto unordered_pair = [&](NodeId a, NodeId c) {
      return !ordered(a, c) && !ordered(c, a);
    };

    for (const auto& [data_value, groups] : by_data) {
      const DataId d(data_value);
      const auto& writers = groups.writers;
      const auto& readers = groups.readers;
      for (size_t i = 0; i < writers.size(); ++i) {
        for (size_t j = i + 1; j < writers.size(); ++j) {
          if (writers[i].branch == writers[j].branch) continue;
          if (!unordered_pair(writers[i].node, writers[j].node)) continue;
          VerificationIssue issue = Issue(
              VerifyRule::kLostUpdate, VerifySeverity::kWarning,
              StrFormat("parallel unordered writes of '%s' by %s and %s",
                        DataName(schema_, d).c_str(),
                        NodeDesc(schema_, writers[i].node).c_str(),
                        NodeDesc(schema_, writers[j].node).c_str()),
              "order the writers with a sync edge", writers[i].node,
              EdgeId::Invalid(), d);
          issue.span.push_back(EntitySpan::Node(writers[j].node));
          s.issues.push_back(std::move(issue));
        }
        for (const Access& r : readers) {
          if (writers[i].branch == r.branch) continue;
          if (!unordered_pair(writers[i].node, r.node)) continue;
          VerificationIssue issue = Issue(
              VerifyRule::kDataRace, VerifySeverity::kWarning,
              StrFormat("unsynchronized parallel write/read of '%s' "
                        "(%s writes, %s reads)",
                        DataName(schema_, d).c_str(),
                        NodeDesc(schema_, writers[i].node).c_str(),
                        NodeDesc(schema_, r.node).c_str()),
              "order writer and reader with a sync edge", writers[i].node,
              EdgeId::Invalid(), d);
          issue.span.push_back(EntitySpan::Node(r.node));
          s.issues.push_back(std::move(issue));
        }
      }
    }
  }

  // True if a control+sync path inside `members` orders a before b.
  bool OrderedBySync(NodeId a, NodeId b,
                     const std::unordered_set<NodeId>& members) {
    std::unordered_set<NodeId> visited{a};
    std::deque<NodeId> queue{a};
    while (!queue.empty()) {
      NodeId cur = queue.front();
      queue.pop_front();
      bool found = false;
      schema_.VisitOutEdges(cur, [&](const Edge& e) {
        if (e.type == EdgeType::kLoop || found) return;
        if (e.dst == b) {
          found = true;
          return;
        }
        if (members.count(e.dst) == 0) return;
        if (visited.insert(e.dst).second) queue.push_back(e.dst);
      });
      if (found) return true;
    }
    return false;
  }

  // --- report assembly (runs on every analysis; O(edges + blocks)) ---------

  VerificationReport AssembleReport(const BlockTree& tree,
                                    const std::vector<Summary>& summaries) {
    VerificationReport report;
    for (const Summary& s : summaries) {
      for (const VerificationIssue& issue : s->issues) report.Add(issue);
    }

    int starts = 0, ends = 0;
    for (const Summary& s : summaries) {
      starts += s->starts;
      ends += s->ends;
    }
    CheckStartEndCounts(starts, ends, report);

    std::vector<Edge> sync_edges;
    ScanEdges(sync_edges, report);
    for (const Edge& e : sync_edges) {
      CheckSyncEdgePlacement(tree, e, report);
    }
    CheckDeadlocks(tree, sync_edges, report);

    // Mandatory uses the root composition could not satisfy start from an
    // empty availability set — they are the missing-data errors.
    for (const auto& p : summaries[0]->pending) {
      const DataElement* elem = schema_.FindData(p.data);
      if (elem == nullptr) continue;  // dangling ref, reported elsewhere
      report.Add(Issue(
          VerifyRule::kMissingData, VerifySeverity::kError,
          StrFormat("%s: %s '%s' is not guaranteed to be written on "
                    "every path",
                    NodeDesc(schema_, p.node).c_str(), WhyString(p.why),
                    elem->name.c_str()),
          StrFormat("write '%s' on every path before this node or mark "
                    "the read optional",
                    elem->name.c_str()),
          p.node, EdgeId::Invalid(), p.data));
    }

    CheckNaming(summaries, report);
    return report;
  }

  // Duplicate-name fold. A flat open-addressed count table over
  // string_views borrowing the summary-owned strings, probed with the
  // hashes cached in the summaries — node-allocating hash maps (and even
  // rehashing per verify) dominated the whole incremental verify on large
  // schemas. The deterministic grouping pass runs only when a duplicate
  // actually exists.
  void CheckNaming(const std::vector<Summary>& summaries,
                   VerificationReport& report) {
    size_t total = 0;
    for (const Summary& s : summaries) total += s->names.size();
    if (total < 2) return;
    size_t cap = 16;
    while (cap < total * 2) cap <<= 1;
    struct Slot {
      std::string_view name;
      uint64_t hash = 0;
      int count = 0;
    };
    std::vector<Slot> table(cap);
    const size_t mask = cap - 1;
    auto find_slot = [&](std::string_view name, uint64_t hash) -> Slot& {
      size_t i = hash & mask;
      while (table[i].count != 0 &&
             (table[i].hash != hash || table[i].name != name)) {
        i = (i + 1) & mask;
      }
      return table[i];
    };
    bool any_dup = false;
    for (const Summary& s : summaries) {
      for (const auto& ref : s->names) {
        Slot& slot = find_slot(ref.name, ref.hash);
        if (slot.count == 0) {
          slot.name = ref.name;
          slot.hash = ref.hash;
        }
        if (++slot.count > 1) any_dup = true;
      }
    }
    if (!any_dup) return;
    std::map<std::string_view, std::vector<NodeId>> dups;  // deterministic
    for (const Summary& s : summaries) {
      for (const auto& ref : s->names) {
        if (find_slot(ref.name, ref.hash).count > 1) {
          dups[ref.name].push_back(ref.node);
        }
      }
    }
    for (const auto& [name, nodes] : dups) {
      VerificationIssue issue = Issue(
          VerifyRule::kNaming, VerifySeverity::kWarning,
          StrFormat("activity name '%s' used %zu times",
                    std::string(name).c_str(), nodes.size()),
          "rename the duplicate activities");
      for (NodeId n : nodes) issue.span.push_back(EntitySpan::Node(n));
      report.Add(std::move(issue));
    }
  }

  void CheckStartEndCounts(int starts, int ends, VerificationReport& report) {
    if (starts != 1) {
      report.Add(Issue(
          VerifyRule::kStructure, VerifySeverity::kError,
          StrFormat("schema has %d start-flow nodes, expected 1", starts),
          "ensure the schema has exactly one start-flow node"));
    }
    if (ends != 1) {
      report.Add(Issue(
          VerifyRule::kStructure, VerifySeverity::kError,
          StrFormat("schema has %d end-flow nodes, expected 1", ends),
          "ensure the schema has exactly one end-flow node"));
    }
  }

  // One pass over all edges: loop-edge typing + sync edge collection.
  void ScanEdges(std::vector<Edge>& sync_edges, VerificationReport& report) {
    schema_.VisitEdges([&](const Edge& e) {
      if (e.type == EdgeType::kSync) {
        sync_edges.push_back(e);
        return;
      }
      if (e.type != EdgeType::kLoop) return;
      const Node* src = schema_.FindNode(e.src);
      const Node* dst = schema_.FindNode(e.dst);
      if (src == nullptr || dst == nullptr ||
          src->type != NodeType::kLoopEnd ||
          dst->type != NodeType::kLoopStart) {
        report.Add(Issue(
            VerifyRule::kStructure, VerifySeverity::kError,
            "loop edge must connect a loop end to a loop start",
            "connect the loop edge from the loop end back to its loop start",
            NodeId::Invalid(), e.id));
      }
    });
  }

  void CheckSyncEdgePlacement(const BlockTree& tree, const Edge& e,
                              VerificationReport& report) {
    const Node* src = schema_.FindNode(e.src);
    const Node* dst = schema_.FindNode(e.dst);
    if (src == nullptr || dst == nullptr) return;  // freeze caught this
    if (src->type != NodeType::kActivity || dst->type != NodeType::kActivity) {
      VerificationIssue issue = Issue(
          VerifyRule::kSyncEdge, VerifySeverity::kError,
          StrFormat("sync edge %s->%s must connect activities",
                    NodeDesc(schema_, e.src).c_str(),
                    NodeDesc(schema_, e.dst).c_str()),
          "attach both sync edge endpoints to activity nodes", e.src, e.id);
      issue.span.push_back(EntitySpan::Node(e.dst));
      report.Add(std::move(issue));
      return;
    }
    if (!tree.InDifferentParallelBranches(e.src, e.dst)) {
      VerificationIssue issue = Issue(
          VerifyRule::kSyncEdge, VerifySeverity::kError,
          StrFormat("sync edge %s->%s does not connect different "
                    "branches of a common parallel block",
                    NodeDesc(schema_, e.src).c_str(),
                    NodeDesc(schema_, e.dst).c_str()),
          "place both endpoints in different branches of a common AND block",
          e.src, e.id);
      issue.span.push_back(EntitySpan::Node(e.dst));
      report.Add(std::move(issue));
    }
    if (tree.InnermostLoop(e.src) != tree.InnermostLoop(e.dst)) {
      VerificationIssue issue = Issue(
          VerifyRule::kSyncEdge, VerifySeverity::kError,
          StrFormat("sync edge %s->%s crosses a loop boundary",
                    NodeDesc(schema_, e.src).c_str(),
                    NodeDesc(schema_, e.dst).c_str()),
          "keep both sync edge endpoints inside the same loop block", e.src,
          e.id);
      issue.span.push_back(EntitySpan::Node(e.dst));
      report.Add(std::move(issue));
    }
  }

  // Deadlock-causing cycles need a sync edge (the tree parse already
  // proves control-only acyclicity), and any such cycle is contained in
  // the subtree of a *maximal* block owning a sync edge (owner = least
  // common ancestor of the endpoints). Kahn over those subtrees only.
  void CheckDeadlocks(const BlockTree& tree, const std::vector<Edge>& syncs,
                      VerificationReport& report) {
    if (syncs.empty()) return;
    std::unordered_set<int> owners;
    for (const Edge& e : syncs) {
      auto ba = tree.BlockOfNode(e.src);
      auto bb = tree.BlockOfNode(e.dst);
      if (!ba.ok() || !bb.ok()) continue;
      owners.insert(tree.CommonAncestor(*ba, *bb));
    }
    std::vector<int> maximal;
    for (int o : owners) {
      bool covered = false;
      for (int cur = tree.block(o).parent; cur >= 0;
           cur = tree.block(cur).parent) {
        if (owners.count(cur) > 0) {
          covered = true;
          break;
        }
      }
      if (!covered) maximal.push_back(o);
    }
    std::sort(maximal.begin(), maximal.end());
    for (int o : maximal) {
      std::vector<NodeId> members = tree.NodesIn(o);
      KahnCycleCheck(members, report);
    }
  }

  // Kahn's algorithm over control+sync edges among `members`; a shortfall
  // is a deadlock-causing cycle (paper Fig. 1: instance I2). Extracts one
  // concrete cycle for the report.
  void KahnCycleCheck(const std::vector<NodeId>& members,
                      VerificationReport& report) {
    std::unordered_set<NodeId> member_set(members.begin(), members.end());
    std::unordered_map<NodeId, int> indegree;
    indegree.reserve(members.size());
    for (NodeId m : members) indegree[m] = 0;
    for (NodeId m : members) {
      schema_.VisitOutEdges(m, [&](const Edge& e) {
        if (e.type == EdgeType::kLoop) return;
        if (member_set.count(e.dst) > 0) indegree[e.dst]++;
      });
    }
    std::deque<NodeId> ready;
    for (NodeId m : members) {
      if (indegree[m] == 0) ready.push_back(m);
    }
    size_t emitted = 0;
    while (!ready.empty()) {
      NodeId cur = ready.front();
      ready.pop_front();
      ++emitted;
      schema_.VisitOutEdges(cur, [&](const Edge& e) {
        if (e.type == EdgeType::kLoop || member_set.count(e.dst) == 0) return;
        if (--indegree[e.dst] == 0) ready.push_back(e.dst);
      });
    }
    if (emitted == members.size()) return;

    // DFS from a residual node, backtracking out of dead ends (residual
    // nodes downstream of the cycle), until an on-path node repeats.
    std::vector<std::string> names;
    std::vector<NodeId> cycle_nodes;
    std::unordered_set<NodeId> exhausted;
    for (NodeId seed : members) {
      if (indegree[seed] == 0 || !names.empty()) continue;
      std::vector<NodeId> path{seed};
      std::unordered_set<NodeId> on_path{seed};
      while (!path.empty() && names.empty()) {
        NodeId cur = path.back();
        NodeId next;
        NodeId repeat;
        schema_.VisitOutEdges(cur, [&](const Edge& e) {
          if (e.type == EdgeType::kLoop || next.valid() || repeat.valid()) {
            return;
          }
          if (member_set.count(e.dst) == 0) return;
          if (indegree[e.dst] <= 0 || exhausted.count(e.dst) > 0) return;
          if (on_path.count(e.dst) > 0) {
            repeat = e.dst;
          } else {
            next = e.dst;
          }
        });
        if (repeat.valid()) {
          bool in_cycle = false;
          for (NodeId n : path) {
            if (n == repeat) in_cycle = true;
            if (in_cycle) {
              names.push_back(NodeDesc(schema_, n));
              cycle_nodes.push_back(n);
            }
          }
          names.push_back(NodeDesc(schema_, repeat));
          break;
        }
        if (next.valid()) {
          path.push_back(next);
          on_path.insert(next);
        } else {
          exhausted.insert(cur);
          on_path.erase(cur);
          path.pop_back();
        }
      }
    }
    VerificationIssue issue = Issue(
        VerifyRule::kDeadlockCycle, VerifySeverity::kError,
        "deadlock-causing cycle over control+sync edges: " +
            Join(names, " -> "),
        "remove or reverse a sync edge on the cycle");
    for (NodeId n : cycle_nodes) issue.span.push_back(EntitySpan::Node(n));
    report.Add(std::move(issue));
  }

  // --- degenerate mode ------------------------------------------------------
  //
  // When the block structure does not parse there is nothing to cache or
  // compose; run the flat whole-schema subset of checks that do not need
  // the tree (the data-flow/race/sync-placement checks are skipped exactly
  // as the non-incremental verifier skipped them).

  AnalysisResult RunDegenerate(const Status& tree_error) {
    VerificationReport report;
    BlockSummary flat;
    std::vector<NodeId> all_nodes;
    schema_.VisitNodes([&](const Node& n) {
      all_nodes.push_back(n.id);
      CheckMember(n, flat);
    });
    for (VerificationIssue& issue : flat.issues) report.Add(std::move(issue));
    CheckStartEndCounts(flat.starts, flat.ends, report);

    std::vector<Edge> sync_edges;
    ScanEdges(sync_edges, report);
    for (const Edge& e : sync_edges) {
      const Node* src = schema_.FindNode(e.src);
      const Node* dst = schema_.FindNode(e.dst);
      if (src == nullptr || dst == nullptr) continue;
      if (src->type != NodeType::kActivity ||
          dst->type != NodeType::kActivity) {
        VerificationIssue issue = Issue(
            VerifyRule::kSyncEdge, VerifySeverity::kError,
            StrFormat("sync edge %s->%s must connect activities",
                      NodeDesc(schema_, e.src).c_str(),
                      NodeDesc(schema_, e.dst).c_str()),
            "attach both sync edge endpoints to activity nodes", e.src, e.id);
        issue.span.push_back(EntitySpan::Node(e.dst));
        report.Add(std::move(issue));
      }
    }

    if (schema_.TopologicalOrder().size() != schema_.node_count()) {
      report.Add(Issue(
          VerifyRule::kControlCycle, VerifySeverity::kError,
          "control-edge graph contains a cycle",
          "break the control-edge cycle or model iteration with a loop "
          "block"));
    }
    report.Add(Issue(VerifyRule::kBlockNesting, VerifySeverity::kError,
                     tree_error.message(),
                     "restructure splits and joins into properly nested "
                     "blocks"));

    KahnCycleCheckIfCyclic(all_nodes, report);

    std::vector<Summary> flat_list{
        std::make_shared<const BlockSummary>(std::move(flat))};
    CheckNaming(flat_list, report);

    auto analysis = std::make_shared<SchemaAnalysis>();
    analysis->stats_.incremental = false;
    return {std::move(report), std::move(analysis)};
  }

  // Degenerate mode runs the deadlock check over the whole node set, like
  // the historical verifier: a pure control cycle then also reports as a
  // deadlock cycle, keeping behaviour unchanged for broken schemas.
  void KahnCycleCheckIfCyclic(const std::vector<NodeId>& all_nodes,
                              VerificationReport& report) {
    KahnCycleCheck(all_nodes, report);
  }

  const SchemaView& schema_;
};

AnalysisResult AnalyzeSchema(const SchemaView& schema) {
  return AnalysisPass(schema).Run(nullptr, nullptr);
}

AnalysisResult AnalyzeDelta(const SchemaAnalysis& base,
                            const SchemaView& candidate,
                            const ChangeRegion& region) {
  return AnalysisPass(candidate).Run(&base, &region);
}

}  // namespace adept
