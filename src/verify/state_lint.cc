#include "verify/state_lint.h"

#include <algorithm>
#include <map>
#include <vector>

#include "common/fs_util.h"
#include "common/json.h"
#include "common/string_util.h"
#include "runtime/instance.h"
#include "runtime/trace.h"
#include "storage/wal.h"

namespace adept {

namespace {

// Trace events appended after the activity's most recent start. The
// instance is making progress elsewhere while this node stays Running —
// the longer that tail, the more the node looks abandoned.
size_t TailSinceStart(const ExecutionTrace& trace, NodeId node) {
  const int64_t last_start = trace.LastStartSeq(node);
  if (last_start < 0) return 0;  // Running without a start: not our rule
  size_t tail = 0;
  for (const TraceEvent& event : trace.events()) {
    if (event.sequence > last_start) ++tail;
  }
  return tail;
}

void LintStuckActivities(const Engine& engine,
                         const StateLintOptions& options,
                         VerificationReport* report) {
  std::vector<InstanceId> ids = engine.InstanceIds();
  std::sort(ids.begin(), ids.end());
  for (InstanceId id : ids) {
    const ProcessInstance* instance = engine.Find(id);
    if (instance == nullptr) continue;
    instance->schema().VisitNodes([&](const Node& node) {
      if (instance->node_state(node.id) != NodeState::kRunning) return;
      const size_t tail = TailSinceStart(instance->trace(), node.id);
      if (tail < options.stuck_after_events) return;
      VerificationIssue issue;
      issue.rule = VerifyRule::kStuckActivity;
      issue.severity = VerifySeverity::kWarning;
      issue.node = node.id;
      issue.span.push_back(EntitySpan::Node(node.id));
      issue.message = StrFormat(
          "activity '%s' (n%u) of instance I%llu is running with no "
          "progress: %zu trace events since its last start",
          node.name.c_str(), node.id.value(),
          static_cast<unsigned long long>(id.value()), tail);
      issue.fix_hint =
          "complete, fail, or retry the activity; if its worker died, "
          "release the work item so it can be re-offered";
      report->Add(std::move(issue));
    });
  }
}

// Replays the claim journal the way WorklistService::Recover does: the
// last record per (instance, node) wins; claim/delegate/start leave a
// live claim, release/close end it.
Status LintOrphanedClaims(const Engine& engine,
                          const StateLintOptions& options,
                          VerificationReport* report) {
  struct LiveClaim {
    uint64_t user = 0;
    bool live = false;
  };
  ADEPT_ASSIGN_OR_RETURN(
      std::vector<WalRecord> records,
      WriteAheadLog::ReadRecords(options.claims_journal_path));
  std::map<std::pair<uint64_t, uint32_t>, LiveClaim> claims;
  for (const WalRecord& record : records) {
    const JsonValue& v = record.value;
    const std::string& type = v.Get("t").as_string();
    const std::pair<uint64_t, uint32_t> key{
        static_cast<uint64_t>(v.Get("i").as_int()),
        static_cast<uint32_t>(v.Get("n").as_int())};
    if (type == "claim" || type == "delegate" || type == "start") {
      claims[key] = {static_cast<uint64_t>(v.Get("u").as_int()), true};
    } else if (type == "release" || type == "close") {
      claims[key] = {0, false};
    }
  }

  for (const auto& [key, claim] : claims) {
    if (!claim.live) continue;
    const InstanceId instance_id(key.first);
    const NodeId node_id(key.second);
    const ProcessInstance* instance = engine.Find(instance_id);
    const Node* node =
        instance == nullptr ? nullptr : instance->schema().FindNode(node_id);
    std::string reason;
    if (instance == nullptr) {
      reason = "the instance no longer exists";
    } else if (node == nullptr) {
      reason = "the node no longer exists in the instance's schema";
    } else {
      const NodeState state = instance->node_state(node_id);
      if (state == NodeState::kActivated || state == NodeState::kRunning ||
          state == NodeState::kSuspended) {
        continue;  // claim still actionable
      }
      reason = StrFormat("the node's state is %s", NodeStateToString(state));
    }
    VerificationIssue issue;
    issue.rule = VerifyRule::kOrphanedClaim;
    issue.severity = VerifySeverity::kWarning;
    issue.node = node_id;
    issue.span.push_back(EntitySpan::Node(node_id));
    const std::string subject =
        node == nullptr ? "a node" : "activity '" + node->name + "'";
    issue.message = StrFormat(
        "worklist claim by u%llu on %s (n%u) of instance I%llu is "
        "orphaned: %s",
        static_cast<unsigned long long>(claim.user), subject.c_str(),
        node_id.value(), static_cast<unsigned long long>(key.first),
        reason.c_str());
    issue.fix_hint =
        "release the claim, or checkpoint (SaveSnapshot compacts the "
        "journal to live claims only)";
    report->Add(std::move(issue));
  }
  return Status::OK();
}

}  // namespace

void LintReplicationStatus(const JsonValue& status,
                           VerificationReport* report) {
  if (!status.is_object() || !status.Get("attached").as_bool()) return;
  const JsonValue& shards = status.Get("shards");
  if (!shards.is_array()) return;
  for (const JsonValue& shard : shards.as_array()) {
    const auto shard_id = static_cast<unsigned long long>(
        shard.Get("shard").as_int());
    if (shard.Get("fenced").as_bool()) {
      VerificationIssue issue;
      issue.rule = VerifyRule::kReplicationDegraded;
      issue.severity = VerifySeverity::kError;
      issue.message = StrFormat(
          "shard %llu's primary is fenced by a newer epoch (own epoch "
          "%llu): this lineage was deposed and rejects every write",
          shard_id,
          static_cast<unsigned long long>(shard.Get("epoch").as_int()));
      issue.fix_hint =
          "stop routing writes to this node; rejoin its file set as a "
          "replica of the promoted primary (the stale suffix is "
          "snapshot-reset away)";
      report->Add(std::move(issue));
      continue;
    }
    if (shard.Get("quorum_live").as_bool()) continue;
    // Below quorum: name every peer that is not alive, with its silence.
    std::string detail;
    int live_copies = 1;  // the primary's own disk
    const JsonValue& peers = shard.Get("peers");
    if (peers.is_array()) {
      for (const JsonValue& peer : peers.as_array()) {
        const std::string& health = peer.Get("health").as_string();
        if (health != "dead") ++live_copies;
        if (health == "alive") continue;
        if (!detail.empty()) detail += ", ";
        detail += StrFormat(
            "%s %s for %llums", peer.Get("endpoint").as_string().c_str(),
            health.c_str(),
            static_cast<unsigned long long>(peer.Get("silence_ms").as_int()));
      }
    }
    VerificationIssue issue;
    issue.rule = VerifyRule::kReplicationDegraded;
    issue.severity = VerifySeverity::kWarning;
    issue.message = StrFormat(
        "shard %llu is below its live quorum (%d of %lld required copies "
        "live): writes fail fast, reads serve degraded%s%s%s",
        shard_id, live_copies,
        static_cast<long long>(shard.Get("quorum").as_int()),
        detail.empty() ? "" : " (", detail.c_str(),
        detail.empty() ? "" : ")");
    issue.fix_hint =
        "restore connectivity to (or restart) the dead replicas, or let "
        "the failover coordinator promote a standby quorum";
    report->Add(std::move(issue));
  }
}

Result<VerificationReport> LintRuntimeState(const Engine& engine,
                                            const StateLintOptions& options) {
  VerificationReport report;
  LintStuckActivities(engine, options, &report);
  if (!options.claims_journal_path.empty()) {
    ADEPT_RETURN_IF_ERROR(LintOrphanedClaims(engine, options, &report));
  }
  if (!options.repl_status_path.empty()) {
    ADEPT_ASSIGN_OR_RETURN(std::string blob,
                           ReadFileToString(options.repl_status_path));
    ADEPT_ASSIGN_OR_RETURN(JsonValue status, JsonValue::Parse(blob));
    LintReplicationStatus(status, &report);
  }
  return report;
}

}  // namespace adept
