#include "verify/state_lint.h"

#include <algorithm>
#include <map>
#include <vector>

#include "common/string_util.h"
#include "runtime/instance.h"
#include "runtime/trace.h"
#include "storage/wal.h"

namespace adept {

namespace {

// Trace events appended after the activity's most recent start. The
// instance is making progress elsewhere while this node stays Running —
// the longer that tail, the more the node looks abandoned.
size_t TailSinceStart(const ExecutionTrace& trace, NodeId node) {
  const int64_t last_start = trace.LastStartSeq(node);
  if (last_start < 0) return 0;  // Running without a start: not our rule
  size_t tail = 0;
  for (const TraceEvent& event : trace.events()) {
    if (event.sequence > last_start) ++tail;
  }
  return tail;
}

void LintStuckActivities(const Engine& engine,
                         const StateLintOptions& options,
                         VerificationReport* report) {
  std::vector<InstanceId> ids = engine.InstanceIds();
  std::sort(ids.begin(), ids.end());
  for (InstanceId id : ids) {
    const ProcessInstance* instance = engine.Find(id);
    if (instance == nullptr) continue;
    instance->schema().VisitNodes([&](const Node& node) {
      if (instance->node_state(node.id) != NodeState::kRunning) return;
      const size_t tail = TailSinceStart(instance->trace(), node.id);
      if (tail < options.stuck_after_events) return;
      VerificationIssue issue;
      issue.rule = VerifyRule::kStuckActivity;
      issue.severity = VerifySeverity::kWarning;
      issue.node = node.id;
      issue.span.push_back(EntitySpan::Node(node.id));
      issue.message = StrFormat(
          "activity '%s' (n%u) of instance I%llu is running with no "
          "progress: %zu trace events since its last start",
          node.name.c_str(), node.id.value(),
          static_cast<unsigned long long>(id.value()), tail);
      issue.fix_hint =
          "complete, fail, or retry the activity; if its worker died, "
          "release the work item so it can be re-offered";
      report->Add(std::move(issue));
    });
  }
}

// Replays the claim journal the way WorklistService::Recover does: the
// last record per (instance, node) wins; claim/delegate/start leave a
// live claim, release/close end it.
Status LintOrphanedClaims(const Engine& engine,
                          const StateLintOptions& options,
                          VerificationReport* report) {
  struct LiveClaim {
    uint64_t user = 0;
    bool live = false;
  };
  ADEPT_ASSIGN_OR_RETURN(
      std::vector<WalRecord> records,
      WriteAheadLog::ReadRecords(options.claims_journal_path));
  std::map<std::pair<uint64_t, uint32_t>, LiveClaim> claims;
  for (const WalRecord& record : records) {
    const JsonValue& v = record.value;
    const std::string& type = v.Get("t").as_string();
    const std::pair<uint64_t, uint32_t> key{
        static_cast<uint64_t>(v.Get("i").as_int()),
        static_cast<uint32_t>(v.Get("n").as_int())};
    if (type == "claim" || type == "delegate" || type == "start") {
      claims[key] = {static_cast<uint64_t>(v.Get("u").as_int()), true};
    } else if (type == "release" || type == "close") {
      claims[key] = {0, false};
    }
  }

  for (const auto& [key, claim] : claims) {
    if (!claim.live) continue;
    const InstanceId instance_id(key.first);
    const NodeId node_id(key.second);
    const ProcessInstance* instance = engine.Find(instance_id);
    const Node* node =
        instance == nullptr ? nullptr : instance->schema().FindNode(node_id);
    std::string reason;
    if (instance == nullptr) {
      reason = "the instance no longer exists";
    } else if (node == nullptr) {
      reason = "the node no longer exists in the instance's schema";
    } else {
      const NodeState state = instance->node_state(node_id);
      if (state == NodeState::kActivated || state == NodeState::kRunning ||
          state == NodeState::kSuspended) {
        continue;  // claim still actionable
      }
      reason = StrFormat("the node's state is %s", NodeStateToString(state));
    }
    VerificationIssue issue;
    issue.rule = VerifyRule::kOrphanedClaim;
    issue.severity = VerifySeverity::kWarning;
    issue.node = node_id;
    issue.span.push_back(EntitySpan::Node(node_id));
    const std::string subject =
        node == nullptr ? "a node" : "activity '" + node->name + "'";
    issue.message = StrFormat(
        "worklist claim by u%llu on %s (n%u) of instance I%llu is "
        "orphaned: %s",
        static_cast<unsigned long long>(claim.user), subject.c_str(),
        node_id.value(), static_cast<unsigned long long>(key.first),
        reason.c_str());
    issue.fix_hint =
        "release the claim, or checkpoint (SaveSnapshot compacts the "
        "journal to live claims only)";
    report->Add(std::move(issue));
  }
  return Status::OK();
}

}  // namespace

Result<VerificationReport> LintRuntimeState(const Engine& engine,
                                            const StateLintOptions& options) {
  VerificationReport report;
  LintStuckActivities(engine, options, &report);
  if (!options.claims_journal_path.empty()) {
    ADEPT_RETURN_IF_ERROR(LintOrphanedClaims(engine, options, &report));
  }
  return report;
}

}  // namespace adept
