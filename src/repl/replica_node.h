// Per-shard WAL replication: replica side.
//
// A ReplicationReplica is one standby *node*: it listens on one TCP port
// and serves a replication session per shard of the cluster that dials it
// (the session's HELLO names the shard). Received WAL batches are
// appended — as the exact raw frames the primary persisted — to this
// node's own per-shard WAL files ("<wal_path>.shard<k>", the same naming
// AdeptCluster uses), synced per the configured SyncMode, and acked; a
// SNAPSHOT message resets the shard (WAL deleted, blob installed at
// "<snapshot_path>.shard<k>") before streaming resumes from the covered
// LSN.
//
// Because the replica's file set *is* a valid AdeptCluster file set,
// promotion is nothing special: Stop() the node, bump the failover epoch
// with PromoteReplicaFiles(wal_path), and run AdeptCluster::Recover over
// the same base paths — recovery replays whatever prefix this node had
// acked. See src/repl/README.md for the full failover walk-through.
//
// Contiguity: a session only accepts a BATCH frame whose LSN is exactly
// last+1 for its shard; anything else ends the session with an ERROR
// frame, and the primary's re-handshake (resume from the acked LSN, or
// snapshot reset) repairs the stream. Two sessions may target the same
// shard during a failover overlap; per-shard state is mutex-guarded so
// the log never interleaves torn writes.

#ifndef ADEPT_REPL_REPLICA_NODE_H_
#define ADEPT_REPL_REPLICA_NODE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "net/transport.h"
#include "repl/health.h"
#include "storage/wal.h"

namespace adept {

struct ReplicaNodeOptions {
  // Listen endpoint; port 0 picks an ephemeral port (see port()).
  NetEndpoint listen;
  // Base paths of this node's durable file set; shard k's files live at
  // "<path>.shard<k>" (AdeptCluster naming, so Recover() promotes them).
  std::string wal_path;
  std::string snapshot_path;
  // Durability applied to every received batch before it is acked. An ack
  // under kFsync means "on this replica's disk" — quorum durability at
  // the primary is only as strong as this mode.
  SyncMode sync = SyncMode::kFlush;
  // Per-frame read/write timeout inside a session.
  int io_timeout_ms = 5000;
  // Health thresholds this node applies to the primary it hears from
  // (every received frame — batches and heartbeats alike — is a proof of
  // liveness; see PrimaryHealth()).
  int suspect_after_ms = 1000;
  int dead_after_ms = 3000;
  // Applied to accepted connections, i.e. this node's outgoing STATUS/ACK
  // frames (fault-testing the ack direction).
  FaultInjector* fault_injector = nullptr;
};

class ReplicationReplica {
 public:
  // Binds the listener, loads the persisted failover epoch (creating the
  // meta file at epoch 0 semantics: a fresh replica reports epoch 0 until
  // its first session), and starts the accept thread.
  static Result<std::unique_ptr<ReplicationReplica>> Start(
      const ReplicaNodeOptions& options);

  ~ReplicationReplica();
  ReplicationReplica(const ReplicationReplica&) = delete;
  ReplicationReplica& operator=(const ReplicationReplica&) = delete;

  // Closes the listener and every session, joins all threads. After Stop
  // the file set is quiescent — safe to promote. Idempotent.
  void Stop();

  uint16_t port() const;

  // Introspection (tests): last contiguous LSN applied for `shard` (0 if
  // the shard never received anything) and the node's current epoch.
  uint64_t ShardLastLsn(uint64_t shard) const;
  uint64_t epoch() const;

  // This node's verdict on its primary: silence across every session
  // (no batch, no heartbeat) degrades alive -> suspect -> dead per the
  // configured thresholds. A node that never heard from any primary
  // reports its silence since startup — a standby with no master is
  // exactly as concerning as one whose master just died.
  PeerHealth PrimaryHealth() const {
    return primary_health_.Assess(options_.suspect_after_ms,
                                  options_.dead_after_ms);
  }
  int64_t PrimarySilenceMs() const { return primary_health_.SilenceMs(); }

 private:
  // Durable state of one shard stream.
  struct ShardState {
    std::mutex mu;
    std::unique_ptr<WriteAheadLog> wal;  // guarded by mu
    uint64_t last_lsn = 0;               // guarded by mu
  };

  explicit ReplicationReplica(const ReplicaNodeOptions& options);

  void AcceptLoop();
  void SessionLoop(TcpConnection* conn);
  ShardState* GetShard(uint64_t shard);
  Status HandleBatch(ShardState& state, const JsonValue& body,
                     uint64_t* acked);
  Status HandleSnapshot(uint64_t shard, ShardState& state,
                        const JsonValue& body, uint64_t* acked);
  Status PersistEpoch(uint64_t epoch);

  const ReplicaNodeOptions options_;
  std::unique_ptr<TcpListener> listener_;
  std::thread accept_thread_;

  mutable std::mutex mu_;
  bool stopping_ = false;                            // guarded by mu_
  uint64_t epoch_ = 0;                               // guarded by mu_
  std::map<uint64_t, std::unique_ptr<ShardState>> shards_;  // guarded by mu_
  // Sessions: the connection (owned) + its thread, reaped on Stop.
  struct Session {
    std::unique_ptr<TcpConnection> conn;
    std::thread thread;
  };
  std::vector<std::unique_ptr<Session>> sessions_;   // guarded by mu_
  HealthTracker primary_health_;  // internally synchronized
};

}  // namespace adept

#endif  // ADEPT_REPL_REPLICA_NODE_H_
