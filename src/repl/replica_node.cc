#include "repl/replica_node.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "cluster/shard_routing.h"
#include "common/fs_util.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "repl/replication.h"

namespace adept {

namespace {

std::string MetaPath(const std::string& wal_base) {
  return wal_base + ".replmeta";
}

// Best-effort ERROR frame so the primary's log names the real cause
// instead of a bare connection reset.
void SendError(TcpConnection* conn, const Status& status) {
  JsonValue body = JsonValue::MakeObject();
  body.Set("message", JsonValue(status.ToString()));
  (void)conn->SendFrame(kMsgError, body.Dump());
}

}  // namespace

Result<std::unique_ptr<ReplicationReplica>> ReplicationReplica::Start(
    const ReplicaNodeOptions& options) {
  if (options.wal_path.empty()) {
    return Status::InvalidArgument("replica node needs a WAL base path");
  }
  auto node =
      std::unique_ptr<ReplicationReplica>(new ReplicationReplica(options));
  // A fresh replica reports epoch 0 (accepts any primary's lineage); a
  // node restarting over an existing file set resumes its persisted epoch
  // so a stale lineage is detected by the next primary it talks to.
  auto meta = ReadFileToString(MetaPath(options.wal_path));
  if (meta.ok()) {
    ADEPT_ASSIGN_OR_RETURN(JsonValue json, JsonValue::Parse(*meta));
    node->epoch_ = static_cast<uint64_t>(json.Get("epoch").as_int());
  } else if (meta.status().code() != StatusCode::kNotFound) {
    return meta.status();
  }
  ADEPT_ASSIGN_OR_RETURN(node->listener_, TcpListener::Bind(options.listen));
  node->listener_->set_fault_injector(options.fault_injector);
  node->accept_thread_ = std::thread([n = node.get()] { n->AcceptLoop(); });
  return node;
}

ReplicationReplica::ReplicationReplica(const ReplicaNodeOptions& options)
    : options_(options) {}

ReplicationReplica::~ReplicationReplica() { Stop(); }

void ReplicationReplica::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  if (listener_ != nullptr) listener_->Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions.swap(sessions_);
    for (auto& session : sessions) session->conn->Close();
  }
  for (auto& session : sessions) {
    if (session->thread.joinable()) session->thread.join();
  }
}

uint16_t ReplicationReplica::port() const {
  return listener_ != nullptr ? listener_->port() : 0;
}

uint64_t ReplicationReplica::ShardLastLsn(uint64_t shard) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = shards_.find(shard);
  if (it == shards_.end()) return 0;
  std::lock_guard<std::mutex> shard_lock(it->second->mu);
  return it->second->last_lsn;
}

uint64_t ReplicationReplica::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

Status ReplicationReplica::PersistEpoch(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch == epoch_) return Status::OK();
  JsonValue meta = JsonValue::MakeObject();
  meta.Set("epoch", JsonValue(epoch));
  ADEPT_RETURN_IF_ERROR(WriteFileAtomic(MetaPath(options_.wal_path),
                                        meta.Dump()));
  epoch_ = epoch;
  return Status::OK();
}

void ReplicationReplica::AcceptLoop() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
    }
    auto accepted = listener_->Accept(200);
    if (!accepted.ok()) {
      // Timeout (poll tick) or a closed listener; the loop head re-checks.
      continue;
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;  // the connection is dropped on the floor
    auto session = std::make_unique<Session>();
    session->conn = std::move(*accepted);
    session->conn->set_write_timeout_ms(options_.io_timeout_ms);
    TcpConnection* conn = session->conn.get();
    session->thread = std::thread([this, conn] { SessionLoop(conn); });
    sessions_.push_back(std::move(session));
  }
}

ReplicationReplica::ShardState* ReplicationReplica::GetShard(uint64_t shard) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = shards_.find(shard);
  if (it != shards_.end()) return it->second.get();

  auto state = std::make_unique<ShardState>();
  const std::string wal_path = ShardRouting::PathFor(options_.wal_path, shard);
  auto wal = WriteAheadLog::Open(wal_path);
  if (!wal.ok()) {
    ADEPT_LOG(kWarning) << "replica: cannot open shard WAL '" << wal_path
                        << "': " << wal.status();
    return nullptr;
  }
  state->wal = std::move(*wal);
  state->last_lsn = state->wal->last_lsn();
  // A shard whose WAL was reset by a snapshot install resumes from the
  // snapshot's covered LSN, not from the (empty) log.
  if (!options_.snapshot_path.empty()) {
    auto blob = ReadFileToString(
        ShardRouting::PathFor(options_.snapshot_path, shard));
    if (blob.ok()) {
      auto json = JsonValue::Parse(*blob);
      if (json.ok()) {
        state->last_lsn = std::max(
            state->last_lsn,
            static_cast<uint64_t>(json->Get("wal_lsn").as_int()));
      }
    }
  }
  ShardState* raw = state.get();
  shards_[shard] = std::move(state);
  return raw;
}

Status ReplicationReplica::HandleBatch(ShardState& state,
                                       const JsonValue& body,
                                       uint64_t* acked) {
  std::lock_guard<std::mutex> lock(state.mu);
  for (const JsonValue& frame : body.Get("frames").as_array()) {
    const uint64_t lsn = static_cast<uint64_t>(frame.Get("l").as_int());
    if (lsn != state.last_lsn + 1) {
      return Status::FailedPrecondition(
          StrFormat("non-contiguous batch: got LSN %llu, expected %llu",
                    static_cast<unsigned long long>(lsn),
                    static_cast<unsigned long long>(state.last_lsn + 1)));
    }
    ADEPT_RETURN_IF_ERROR(
        state.wal->AppendFrame(lsn, frame.Get("p").as_string()));
    state.last_lsn = lsn;
  }
  // One sync per batch: the ack means "durable here per options_.sync".
  ADEPT_RETURN_IF_ERROR(state.wal->Sync(options_.sync));
  *acked = state.last_lsn;
  return Status::OK();
}

Status ReplicationReplica::HandleSnapshot(uint64_t shard, ShardState& state,
                                          const JsonValue& body,
                                          uint64_t* acked) {
  const uint64_t cover = static_cast<uint64_t>(body.Get("cover").as_int());
  const std::string& blob = body.Get("blob").as_string();
  {
    std::lock_guard<std::mutex> lock(state.mu);
    // Full reset: whatever history this shard held (possibly a divergent
    // suffix from a dead primary) is discarded wholesale — the snapshot
    // is the new truth, streaming resumes above its covered LSN. The WAL
    // file is deleted (not Truncate()d) so its internal LSN floor drops:
    // the incoming frames start at cover+1, which may be *below* the old
    // divergent tail.
    state.wal.reset();
    const std::string wal_path =
        ShardRouting::PathFor(options_.wal_path, shard);
    std::error_code ec;
    std::filesystem::remove(wal_path, ec);
    if (ec) {
      return Status::Corruption("cannot reset shard WAL '" + wal_path +
                                "': " + ec.message());
    }
    ADEPT_ASSIGN_OR_RETURN(state.wal, WriteAheadLog::Open(wal_path));
    if (!options_.snapshot_path.empty()) {
      ADEPT_RETURN_IF_ERROR(WriteFileAtomic(
          ShardRouting::PathFor(options_.snapshot_path, shard), blob));
    } else {
      return Status::FailedPrecondition(
          "snapshot transfer but this replica has no snapshot path");
    }
    state.last_lsn = cover;
  }
  ADEPT_RETURN_IF_ERROR(
      PersistEpoch(static_cast<uint64_t>(body.Get("epoch").as_int())));
  *acked = cover;
  return Status::OK();
}

void ReplicationReplica::SessionLoop(TcpConnection* conn) {
  ShardState* state = nullptr;
  uint64_t shard = 0;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
    }
    if (conn->closed()) return;
    auto frame = conn->ReadFrame(200);
    if (!frame.ok()) {
      if (frame.status().code() == StatusCode::kCorruption) {
        // Torn/garbled frame: the stream position is unrecoverable. Kill
        // the session; the primary reconnects and resumes from the ack.
        conn->Close();
        return;
      }
      continue;  // poll tick (timeout); loop head re-checks stop/closed
    }

    primary_health_.Touch();  // any well-formed frame proves liveness
    Status st;
    switch (frame->type) {
      case kMsgHello: {
        auto body = JsonValue::Parse(frame->payload);
        if (!body.ok()) {
          st = body.status();
          break;
        }
        const uint64_t hello_epoch =
            static_cast<uint64_t>(body->Get("epoch").as_int());
        const uint64_t own_epoch = epoch();
        if (hello_epoch < own_epoch) {
          // Fencing: this node already belongs to a newer lineage. A
          // stale primary must be rejected *here*, before negotiation —
          // letting it proceed would end with it snapshot-resetting this
          // node's newer data with its own pre-failover state.
          ADEPT_LOG(kWarning)
              << "replica: fencing stale primary (hello epoch "
              << hello_epoch << " < ours " << own_epoch << ")";
          JsonValue err = JsonValue::MakeObject();
          err.Set("message",
                  JsonValue(StrFormat(
                      "stale epoch %llu rejected; this replica is at %llu",
                      static_cast<unsigned long long>(hello_epoch),
                      static_cast<unsigned long long>(own_epoch))));
          err.Set("fenced", JsonValue(true));
          err.Set("epoch", JsonValue(own_epoch));
          (void)conn->SendFrame(kMsgError, err.Dump());
          conn->Close();
          return;
        }
        shard = static_cast<uint64_t>(body->Get("shard").as_int());
        state = GetShard(shard);
        if (state == nullptr) {
          st = Status::Corruption("replica cannot open shard state");
          break;
        }
        JsonValue reply = JsonValue::MakeObject();
        reply.Set("epoch", JsonValue(own_epoch));
        uint64_t last;
        {
          std::lock_guard<std::mutex> lock(state->mu);
          last = state->last_lsn;
        }
        reply.Set("last", JsonValue(last));
        st = conn->SendFrame(kMsgStatus, reply.Dump());
        break;
      }
      case kMsgHeartbeat: {
        if (state == nullptr) {
          st = Status::FailedPrecondition("HEARTBEAT before HELLO");
          break;
        }
        uint64_t last;
        {
          std::lock_guard<std::mutex> lock(state->mu);
          last = state->last_lsn;
        }
        JsonValue ack = JsonValue::MakeObject();
        ack.Set("last", JsonValue(last));
        st = conn->SendFrame(kMsgAck, ack.Dump());
        break;
      }
      case kMsgResume: {
        if (state == nullptr) {
          st = Status::FailedPrecondition("RESUME before HELLO");
          break;
        }
        auto body = JsonValue::Parse(frame->payload);
        if (!body.ok()) {
          st = body.status();
          break;
        }
        const uint64_t from =
            static_cast<uint64_t>(body->Get("from").as_int());
        uint64_t last;
        {
          std::lock_guard<std::mutex> lock(state->mu);
          last = state->last_lsn;
        }
        if (from != last) {
          // A crossed session (another primary advanced this shard since
          // our STATUS). The re-handshake sorts it out.
          st = Status::FailedPrecondition(
              StrFormat("cannot resume from %llu, shard is at %llu",
                        static_cast<unsigned long long>(from),
                        static_cast<unsigned long long>(last)));
          break;
        }
        st = PersistEpoch(static_cast<uint64_t>(body->Get("epoch").as_int()));
        if (!st.ok()) break;
        JsonValue ack = JsonValue::MakeObject();
        ack.Set("last", JsonValue(last));
        st = conn->SendFrame(kMsgAck, ack.Dump());
        break;
      }
      case kMsgSnapshot: {
        if (state == nullptr) {
          st = Status::FailedPrecondition("SNAPSHOT before HELLO");
          break;
        }
        auto body = JsonValue::Parse(frame->payload);
        if (!body.ok()) {
          st = body.status();
          break;
        }
        uint64_t acked = 0;
        st = HandleSnapshot(shard, *state, *body, &acked);
        if (!st.ok()) break;
        JsonValue ack = JsonValue::MakeObject();
        ack.Set("last", JsonValue(acked));
        st = conn->SendFrame(kMsgAck, ack.Dump());
        break;
      }
      case kMsgBatch: {
        if (state == nullptr) {
          st = Status::FailedPrecondition("BATCH before HELLO");
          break;
        }
        auto body = JsonValue::Parse(frame->payload);
        if (!body.ok()) {
          st = body.status();
          break;
        }
        uint64_t acked = 0;
        st = HandleBatch(*state, *body, &acked);
        if (!st.ok()) break;
        JsonValue ack = JsonValue::MakeObject();
        ack.Set("last", JsonValue(acked));
        st = conn->SendFrame(kMsgAck, ack.Dump());
        break;
      }
      case kMsgError:
        // The peer already gave up on this session.
        conn->Close();
        return;
      default:
        st = Status::InvalidArgument("unexpected frame type " +
                                     std::to_string(frame->type));
        break;
    }
    if (!st.ok()) {
      ADEPT_LOG(kWarning) << "replica session (shard " << shard
                          << ") ended: " << st;
      SendError(conn, st);
      conn->Close();
      return;
    }
  }
}

}  // namespace adept
