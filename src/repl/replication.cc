#include "repl/replication.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/fs_util.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace adept {

namespace {

std::string MetaPath(const std::string& wal_base) {
  return wal_base + ".replmeta";
}

Status WriteEpoch(const std::string& wal_base, uint64_t epoch) {
  JsonValue meta = JsonValue::MakeObject();
  meta.Set("epoch", JsonValue(epoch));
  return WriteFileAtomic(MetaPath(wal_base), meta.Dump());
}

// Stable status-message markers (the IsQuorumTimeout/IsFenced/IsNoQuorum
// contract — see replication.h). Substring matching is deliberate: the
// full messages carry diagnostic numbers, the markers carry the verdict.
constexpr const char kQuorumTimeoutMarker[] =
    "locally durable, quorum not reached";
constexpr const char kFencedMarker[] = "fenced by a newer epoch";
constexpr const char kNoQuorumMarker[] = "no live quorum";

bool MessageContains(const Status& status, const char* marker) {
  return status.code() == StatusCode::kUnavailable &&
         status.message().find(marker) != std::string::npos;
}

}  // namespace

bool IsQuorumTimeout(const Status& status) {
  return MessageContains(status, kQuorumTimeoutMarker);
}

bool IsFenced(const Status& status) {
  return MessageContains(status, kFencedMarker);
}

bool IsNoQuorum(const Status& status) {
  return MessageContains(status, kNoQuorumMarker);
}

Status FencedStatus(uint64_t shard, uint64_t newer_epoch, uint64_t own_epoch) {
  return Status::Unavailable(StrFormat(
      "shard %llu: %s (%llu > %llu); this primary must not accept writes",
      static_cast<unsigned long long>(shard), kFencedMarker,
      static_cast<unsigned long long>(newer_epoch),
      static_cast<unsigned long long>(own_epoch)));
}

Status NoLiveQuorumStatus(uint64_t shard, int live_copies, int quorum) {
  return Status::Unavailable(StrFormat(
      "shard %llu: %s (%d of the %d copies a quorum requires are live); "
      "write rejected before apply",
      static_cast<unsigned long long>(shard), kNoQuorumMarker, live_copies,
      quorum));
}

JsonValue PrimaryStatus::ToJson() const {
  JsonValue peer_list = JsonValue::MakeArray();
  for (const PeerStatus& peer : peers) {
    JsonValue p = JsonValue::MakeObject();
    p.Set("endpoint", JsonValue(peer.endpoint.host + ":" +
                                std::to_string(peer.endpoint.port)));
    p.Set("streaming", JsonValue(peer.streaming));
    p.Set("health", JsonValue(std::string(PeerHealthToString(peer.health))));
    p.Set("acked_lsn", JsonValue(peer.acked_lsn));
    p.Set("silence_ms", JsonValue(peer.silence_ms));
    peer_list.Append(std::move(p));
  }
  JsonValue j = JsonValue::MakeObject();
  j.Set("shard", JsonValue(shard));
  j.Set("epoch", JsonValue(epoch));
  j.Set("local_durable", JsonValue(local_durable));
  j.Set("quorum_acked", JsonValue(quorum_acked));
  j.Set("quorum", JsonValue(static_cast<int64_t>(quorum)));
  j.Set("fenced", JsonValue(fenced));
  j.Set("quorum_live", JsonValue(quorum_live));
  j.Set("tail_evictions", JsonValue(tail_evictions));
  j.Set("tail_frames", JsonValue(static_cast<int64_t>(tail_frames)));
  j.Set("tail_bytes", JsonValue(static_cast<int64_t>(tail_bytes)));
  j.Set("peers", std::move(peer_list));
  return j;
}

Result<uint64_t> ReadReplicationEpoch(const std::string& wal_base) {
  auto content = ReadFileToString(MetaPath(wal_base));
  if (!content.ok()) {
    if (content.status().code() != StatusCode::kNotFound) {
      return content.status();
    }
    ADEPT_RETURN_IF_ERROR(WriteEpoch(wal_base, 1));
    return uint64_t{1};
  }
  ADEPT_ASSIGN_OR_RETURN(JsonValue meta, JsonValue::Parse(*content));
  const uint64_t epoch = static_cast<uint64_t>(meta.Get("epoch").as_int());
  if (epoch == 0) {
    return Status::Corruption("replication meta '" + MetaPath(wal_base) +
                              "' carries no epoch");
  }
  return epoch;
}

Result<uint64_t> PromoteReplicaFiles(const std::string& wal_base,
                                     uint64_t at_least) {
  // A replica that never received a session still promotes cleanly: its
  // epoch starts at 1 (ReadReplicationEpoch creates the meta file).
  ADEPT_ASSIGN_OR_RETURN(uint64_t epoch, ReadReplicationEpoch(wal_base));
  const uint64_t promoted = std::max(epoch + 1, at_least);
  ADEPT_RETURN_IF_ERROR(WriteEpoch(wal_base, promoted));
  return promoted;
}

Result<std::unique_ptr<ReplicationPrimary>> ReplicationPrimary::Start(
    ReplicationSource source, const ReplicationOptions& options) {
  if (options.quorum < 1 ||
      static_cast<size_t>(options.quorum) > options.replicas.size() + 1) {
    return Status::InvalidArgument(
        StrFormat("quorum %d outside [1, %zu] (replicas + the primary)",
                  options.quorum, options.replicas.size() + 1));
  }
  if (source.wal_path.empty()) {
    return Status::InvalidArgument("replication source has no WAL path");
  }
  return std::unique_ptr<ReplicationPrimary>(
      new ReplicationPrimary(std::move(source), options));
}

ReplicationPrimary::ReplicationPrimary(ReplicationSource source,
                                       const ReplicationOptions& options)
    : source_(std::move(source)), options_(options) {
  local_durable_ = source_.start_lsn;
  peers_.reserve(options_.replicas.size());
  for (size_t i = 0; i < options_.replicas.size(); ++i) {
    auto peer = std::make_unique<Peer>();
    peer->endpoint = options_.replicas[i];
    peer->injector = i < options_.peer_fault_injectors.size() &&
                             options_.peer_fault_injectors[i] != nullptr
                         ? options_.peer_fault_injectors[i]
                         : options_.fault_injector;
    peers_.push_back(std::move(peer));
  }
  for (auto& peer : peers_) {
    peer->thread = std::thread([this, p = peer.get()] { PeerLoop(*p); });
  }
}

ReplicationPrimary::~ReplicationPrimary() { Stop(); }

void ReplicationPrimary::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    // Wake peer threads blocked inside ReadFrame/SendFrame: closing the
    // socket makes the pending I/O fail with kUnavailable.
    for (auto& peer : peers_) {
      if (peer->conn != nullptr) peer->conn->Close();
    }
  }
  frames_cv_.notify_all();
  acks_cv_.notify_all();
  for (auto& peer : peers_) {
    if (peer->thread.joinable()) peer->thread.join();
  }
}

void ReplicationPrimary::OnDurableBatch(const std::vector<WalFrame>& frames) {
  if (frames.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const WalFrame& frame : frames) {
      tail_bytes_ += frame.payload.size();
      tail_.push_back(frame);
    }
    // The slowest ack across peers: evicting above it forces someone onto
    // the WAL-file / snapshot catch-up path, which is what the eviction
    // counter measures (a dead peer must not pin unbounded memory). With
    // no peers nothing ever needs the tail, so nothing counts as evicted.
    uint64_t min_acked = ~uint64_t{0};
    for (const auto& peer : peers_) {
      min_acked = std::min(min_acked, peer->acked_lsn);
    }
    while (!tail_.empty() && (tail_.size() > options_.tail_buffer_frames ||
                              tail_bytes_ > options_.tail_buffer_bytes)) {
      if (tail_.front().lsn > min_acked) ++tail_evictions_;
      tail_bytes_ -= tail_.front().payload.size();
      tail_.pop_front();
    }
    local_durable_ = frames.back().lsn;
  }
  frames_cv_.notify_all();
}

uint64_t ReplicationPrimary::quorum_acked_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (options_.quorum <= 1) return local_durable_;
  std::vector<uint64_t> acked;
  acked.reserve(peers_.size());
  for (const auto& peer : peers_) acked.push_back(peer->acked_lsn);
  std::sort(acked.begin(), acked.end(), std::greater<uint64_t>());
  return acked[static_cast<size_t>(options_.quorum) - 2];
}

int ReplicationPrimary::connected_peers() const {
  std::lock_guard<std::mutex> lock(mu_);
  int n = 0;
  for (const auto& peer : peers_) n += peer->streaming ? 1 : 0;
  return n;
}

Status ReplicationPrimary::WaitForPeers(int n, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    int streaming = 0;
    for (const auto& peer : peers_) streaming += peer->streaming ? 1 : 0;
    if (streaming >= n) return Status::OK();
    if (stopping_) return Status::Unavailable("replication stopped");
    if (acks_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return Status::Unavailable(
          StrFormat("only %d of %d peers connected within %dms", streaming, n,
                    timeout_ms));
    }
  }
}

Status ReplicationPrimary::WaitRemote(uint64_t lsn) {
  const int needed = options_.quorum - 1;
  if (needed <= 0) return Status::OK();  // local copy satisfies the quorum
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.ack_timeout_ms);
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (fenced_.load(std::memory_order_acquire)) {
      // A newer primary owns the shard; waiting cannot succeed, and the
      // record — though on this node's disk — belongs to a dead lineage.
      return FencedStatus(source_.shard,
                          fenced_by_.load(std::memory_order_acquire),
                          source_.epoch);
    }
    int acked = 0;
    for (const auto& peer : peers_) acked += peer->acked_lsn >= lsn ? 1 : 0;
    if (acked >= needed) return Status::OK();
    if (stopping_) {
      return Status::Unavailable("replication stopped before quorum");
    }
    if (acks_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      // The quorum-timeout verdict (see IsQuorumTimeout): the record IS on
      // this primary's disk, so it is maybe-applied — it survives a
      // failover exactly when the promoted replica's prefix covers `lsn`.
      return Status::Unavailable(StrFormat(
          "shard %llu: LSN %llu %s (acked %d/%d within %dms)",
          static_cast<unsigned long long>(source_.shard),
          static_cast<unsigned long long>(lsn), kQuorumTimeoutMarker,
          acked + 1, options_.quorum, options_.ack_timeout_ms));
    }
  }
}

bool ReplicationPrimary::HasLiveQuorum() const {
  return CheckWritable().ok();
}

Status ReplicationPrimary::CheckWritable() const {
  if (fenced_.load(std::memory_order_acquire)) {
    return FencedStatus(source_.shard,
                        fenced_by_.load(std::memory_order_acquire),
                        source_.epoch);
  }
  std::lock_guard<std::mutex> lock(mu_);
  int live = 1;  // the primary's own copy
  for (const auto& peer : peers_) {
    if (peer->health.Assess(options_.suspect_after_ms,
                            options_.dead_after_ms) != PeerHealth::kDead) {
      ++live;
    }
  }
  if (live < options_.quorum) {
    return NoLiveQuorumStatus(source_.shard, live, options_.quorum);
  }
  return Status::OK();
}

uint64_t ReplicationPrimary::tail_evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tail_evictions_;
}

PrimaryStatus ReplicationPrimary::GetStatus() const {
  PrimaryStatus status;
  status.shard = source_.shard;
  status.epoch = source_.epoch;
  status.quorum = options_.quorum;
  status.fenced = fenced_.load(std::memory_order_acquire);
  status.quorum_acked = quorum_acked_lsn();
  std::lock_guard<std::mutex> lock(mu_);
  status.local_durable = local_durable_;
  status.tail_evictions = tail_evictions_;
  status.tail_frames = tail_.size();
  status.tail_bytes = tail_bytes_;
  int live = 1;
  for (const auto& peer : peers_) {
    PeerStatus p;
    p.endpoint = peer->endpoint;
    p.streaming = peer->streaming;
    p.health = peer->health.Assess(options_.suspect_after_ms,
                                   options_.dead_after_ms);
    p.acked_lsn = peer->acked_lsn;
    p.silence_ms = peer->health.SilenceMs();
    if (p.health != PeerHealth::kDead) ++live;
    status.peers.push_back(std::move(p));
  }
  status.quorum_live = !status.fenced && live >= options_.quorum;
  return status;
}

void ReplicationPrimary::PeerLoop(Peer& peer) {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (stopping_) return;
    }
    if (fenced_.load(std::memory_order_acquire)) return;  // stand down
    ConnectPeer(peer);  // returns only on session error or stop
    std::unique_lock<std::mutex> lock(mu_);
    if (stopping_) return;
    // Backoff before redialing a down peer; stop wakes this immediately.
    frames_cv_.wait_for(lock, std::chrono::milliseconds(options_.retry_ms));
  }
}

Status ReplicationPrimary::ConnectPeer(Peer& peer) {
  ADEPT_ASSIGN_OR_RETURN(
      std::unique_ptr<TcpConnection> conn,
      TcpConnection::Dial(peer.endpoint, options_.connect_timeout_ms));
  conn->set_fault_injector(peer.injector);
  conn->set_write_timeout_ms(options_.io_timeout_ms);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return Status::Unavailable("stopping");
    peer.conn = conn.get();
  }
  Status st = RunSession(peer, *conn);
  {
    // Unpublish before the connection object dies: Stop() may Close()
    // through peer.conn while it is published, never after.
    std::lock_guard<std::mutex> lock(mu_);
    peer.streaming = false;
    peer.conn = nullptr;
  }
  acks_cv_.notify_all();
  return st;
}

Status ReplicationPrimary::RunSession(Peer& peer, TcpConnection& conn) {
  uint64_t durable;
  {
    std::lock_guard<std::mutex> lock(mu_);
    durable = local_durable_;
  }
  JsonValue hello = JsonValue::MakeObject();
  hello.Set("shard", JsonValue(source_.shard));
  hello.Set("epoch", JsonValue(source_.epoch));
  hello.Set("durable", JsonValue(durable));
  ADEPT_RETURN_IF_ERROR(conn.SendFrame(kMsgHello, hello.Dump()));

  ADEPT_ASSIGN_OR_RETURN(NetFrame status_frame,
                         conn.ReadFrame(options_.io_timeout_ms));
  if (status_frame.type == kMsgError) {
    // A fencing replica rejects the HELLO outright: it already belongs to
    // a newer epoch's lineage and refuses to let this (stale) primary
    // negotiate — which could otherwise snapshot-reset newer data away.
    auto body = JsonValue::Parse(status_frame.payload);
    if (body.ok() && body->Get("fenced").as_bool()) {
      return FenceSelf(peer,
                       static_cast<uint64_t>(body->Get("epoch").as_int()));
    }
    return Status::Unavailable("peer rejected the session: " +
                               (body.ok() ? body->Get("message").as_string()
                                          : status_frame.payload));
  }
  if (status_frame.type != kMsgStatus) {
    return Status::Corruption("expected STATUS, got frame type " +
                              std::to_string(status_frame.type));
  }
  ADEPT_ASSIGN_OR_RETURN(JsonValue status, JsonValue::Parse(
                                               status_frame.payload));
  const uint64_t replica_epoch =
      static_cast<uint64_t>(status.Get("epoch").as_int());
  const uint64_t replica_last =
      static_cast<uint64_t>(status.Get("last").as_int());
  peer.health.Touch();
  if (replica_epoch > source_.epoch) {
    // Belt over the replica's suspenders: even a replica that answered
    // STATUS (an older build, a race with its own epoch adoption) must
    // never be regressed by a stale lineage.
    return FenceSelf(peer, replica_epoch);
  }

  ADEPT_RETURN_IF_ERROR(
      NegotiateSession(peer, conn, replica_epoch, replica_last));
  {
    std::lock_guard<std::mutex> lock(mu_);
    peer.streaming = true;
  }
  acks_cv_.notify_all();

  // The streaming loop: stop-and-wait batches. Simplicity over pipeline
  // depth — a batch carries up to max_batch_frames frames, so the ack
  // round trip amortizes well, and "resume from any acked prefix" falls
  // out of tracking nothing but acked_lsn. An idle stream degenerates to
  // HEARTBEAT/ACK ping-pong every heartbeat_interval_ms, which is what
  // keeps both sides' health trackers fed.
  auto last_probe = std::chrono::steady_clock::now();
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (stopping_) return Status::Unavailable("stopping");
    }
    ADEPT_ASSIGN_OR_RETURN(std::vector<WalFrame> frames,
                           CollectFrames(peer, conn));
    if (frames.empty()) {
      // Caught up (CollectFrames parked briefly): probe liveness when the
      // interval elapsed since the last successful round trip.
      const auto now = std::chrono::steady_clock::now();
      if (options_.heartbeat_interval_ms > 0 &&
          now - last_probe >=
              std::chrono::milliseconds(options_.heartbeat_interval_ms)) {
        ADEPT_RETURN_IF_ERROR(SendHeartbeat(peer, conn));
        last_probe = now;
      }
      continue;
    }
    ADEPT_RETURN_IF_ERROR(SendBatch(peer, conn, frames));
    last_probe = std::chrono::steady_clock::now();
  }
}

Status ReplicationPrimary::FenceSelf(const Peer& peer, uint64_t newer_epoch) {
  fenced_by_.store(newer_epoch, std::memory_order_release);
  fenced_.store(true, std::memory_order_release);
  ADEPT_LOG(kWarning) << "repl shard " << source_.shard << ": peer "
                      << peer.endpoint.host << ":" << peer.endpoint.port
                      << " carries epoch " << newer_epoch << " > ours ("
                      << source_.epoch
                      << "); this primary is fenced and stands down";
  // Quorum waiters must fail fast, not ride out their ack timeout.
  acks_cv_.notify_all();
  return FencedStatus(source_.shard, newer_epoch, source_.epoch);
}

Status ReplicationPrimary::NegotiateSession(Peer& peer, TcpConnection& conn,
                                            uint64_t replica_epoch,
                                            uint64_t replica_last) {
  uint64_t durable;
  {
    std::lock_guard<std::mutex> lock(mu_);
    durable = local_durable_;
  }
  // Divergence: a peer ahead of this primary's durable LSN holds records
  // that were never quorum-committed here (an old primary's unacked
  // suffix); a peer from another epoch with any history may hold records
  // a promotion rewrote. Both are discarded via snapshot reset.
  const bool diverged = replica_last > durable ||
                        (replica_epoch != source_.epoch && replica_last > 0);
  if (diverged) {
    ADEPT_LOG(kWarning) << "repl shard " << source_.shard << ": peer "
                        << peer.endpoint.host << ":" << peer.endpoint.port
                        << " diverged (epoch " << replica_epoch << " vs "
                        << source_.epoch << ", last " << replica_last
                        << " vs durable " << durable << "); snapshot reset";
    return SendSnapshotReset(peer, conn);
  }
  // Resumable iff the frames above replica_last still exist: in the tail
  // buffer, or in the WAL file (whose frames are contiguous — the gap
  // test is purely "does the file reach back far enough").
  bool resumable = replica_last == durable;
  if (!resumable) {
    std::lock_guard<std::mutex> lock(mu_);
    resumable = !tail_.empty() && tail_.front().lsn <= replica_last + 1;
  }
  if (!resumable) {
    ADEPT_ASSIGN_OR_RETURN(WalTail tail, WriteAheadLog::ReadTail(
                                             source_.wal_path, replica_last));
    resumable = tail.first_lsn != 0 && tail.first_lsn <= replica_last + 1;
  }
  if (!resumable) return SendSnapshotReset(peer, conn);

  JsonValue resume = JsonValue::MakeObject();
  resume.Set("epoch", JsonValue(source_.epoch));
  resume.Set("from", JsonValue(replica_last));
  ADEPT_RETURN_IF_ERROR(conn.SendFrame(kMsgResume, resume.Dump()));
  ADEPT_ASSIGN_OR_RETURN(NetFrame ack, conn.ReadFrame(options_.io_timeout_ms));
  if (ack.type != kMsgAck) {
    return Status::Corruption("expected ACK of RESUME");
  }
  peer.health.Touch();
  {
    std::lock_guard<std::mutex> lock(mu_);
    peer.acked_lsn = replica_last;
  }
  acks_cv_.notify_all();
  return Status::OK();
}

Status ReplicationPrimary::SendSnapshotReset(Peer& peer, TcpConnection& conn) {
  if (source_.snapshot_path.empty()) {
    return Status::FailedPrecondition(
        "peer needs a snapshot transfer but the shard has no snapshot path");
  }
  if (source_.checkpoint) {
    // A fresh checkpoint guarantees the blob covers every LSN the peer is
    // missing; the WAL is truncated to the frames above it.
    ADEPT_RETURN_IF_ERROR(source_.checkpoint());
  }
  ADEPT_ASSIGN_OR_RETURN(std::string blob,
                         ReadFileToString(source_.snapshot_path));
  ADEPT_ASSIGN_OR_RETURN(JsonValue snapshot, JsonValue::Parse(blob));
  const uint64_t cover =
      static_cast<uint64_t>(snapshot.Get("wal_lsn").as_int());

  JsonValue msg = JsonValue::MakeObject();
  msg.Set("epoch", JsonValue(source_.epoch));
  msg.Set("cover", JsonValue(cover));
  msg.Set("blob", JsonValue(std::move(blob)));
  ADEPT_RETURN_IF_ERROR(conn.SendFrame(kMsgSnapshot, msg.Dump()));
  ADEPT_ASSIGN_OR_RETURN(NetFrame ack, conn.ReadFrame(options_.io_timeout_ms));
  if (ack.type != kMsgAck) {
    return Status::Corruption("expected ACK of SNAPSHOT");
  }
  ADEPT_ASSIGN_OR_RETURN(JsonValue body, JsonValue::Parse(ack.payload));
  if (static_cast<uint64_t>(body.Get("last").as_int()) != cover) {
    return Status::Corruption("replica acked a different snapshot coverage");
  }
  peer.health.Touch();
  {
    std::lock_guard<std::mutex> lock(mu_);
    peer.acked_lsn = cover;
  }
  acks_cv_.notify_all();
  return Status::OK();
}

Result<std::vector<WalFrame>> ReplicationPrimary::CollectFrames(
    Peer& peer, TcpConnection& conn) {
  uint64_t acked, durable;
  std::vector<WalFrame> frames;
  {
    std::unique_lock<std::mutex> lock(mu_);
    acked = peer.acked_lsn;
    durable = local_durable_;
    if (acked >= durable) {
      // Caught up; park until the next durable batch (or stop/backoff) —
      // but never longer than the heartbeat interval, so the idle-stream
      // liveness probe in RunSession fires on schedule.
      int park_ms = 200;
      if (options_.heartbeat_interval_ms > 0) {
        park_ms = std::min(park_ms, options_.heartbeat_interval_ms);
      }
      frames_cv_.wait_for(lock, std::chrono::milliseconds(park_ms));
      return frames;
    }
    if (!tail_.empty() && tail_.front().lsn <= acked + 1) {
      for (const WalFrame& frame : tail_) {
        if (frame.lsn <= acked) continue;
        if (frames.size() >= options_.max_batch_frames) break;
        frames.push_back(frame);
      }
      return frames;
    }
  }
  // The buffer no longer reaches back to the peer's ack point: a cold
  // rejoin or a peer that slipped behind the bounded tail. Read from the
  // file instead — and if a checkpoint truncated the needed frames away,
  // reset via snapshot.
  ADEPT_ASSIGN_OR_RETURN(WalTail tail,
                         WriteAheadLog::ReadTail(source_.wal_path, acked));
  const bool gap = tail.first_lsn == 0 || tail.first_lsn > acked + 1;
  if (gap) {
    ADEPT_RETURN_IF_ERROR(SendSnapshotReset(peer, conn));
    return frames;  // empty; the next iteration streams from the new base
  }
  for (WalFrame& frame : tail.frames) {
    // Never ship beyond the durable point: the file may briefly contain
    // written-but-unsynced frames, and a replica must not get ahead of
    // what the primary acknowledges as durable.
    if (frame.lsn > durable) break;
    if (frames.size() >= options_.max_batch_frames) break;
    frames.push_back(std::move(frame));
  }
  return frames;
}

Status ReplicationPrimary::SendBatch(Peer& peer, TcpConnection& conn,
                                     const std::vector<WalFrame>& frames) {
  JsonValue list = JsonValue::MakeArray();
  for (const WalFrame& frame : frames) {
    JsonValue f = JsonValue::MakeObject();
    f.Set("l", JsonValue(frame.lsn));
    f.Set("p", JsonValue(frame.payload));
    list.Append(std::move(f));
  }
  JsonValue msg = JsonValue::MakeObject();
  msg.Set("first", JsonValue(frames.front().lsn));
  msg.Set("frames", std::move(list));
  ADEPT_RETURN_IF_ERROR(conn.SendFrame(kMsgBatch, msg.Dump()));

  ADEPT_ASSIGN_OR_RETURN(NetFrame ack, conn.ReadFrame(options_.io_timeout_ms));
  if (ack.type != kMsgAck) {
    return Status::Corruption("expected ACK of BATCH");
  }
  ADEPT_ASSIGN_OR_RETURN(JsonValue body, JsonValue::Parse(ack.payload));
  const uint64_t last = static_cast<uint64_t>(body.Get("last").as_int());
  if (last < frames.back().lsn) {
    return Status::Corruption(
        StrFormat("replica acked LSN %llu for a batch ending at %llu",
                  static_cast<unsigned long long>(last),
                  static_cast<unsigned long long>(frames.back().lsn)));
  }
  peer.health.Touch();
  {
    std::lock_guard<std::mutex> lock(mu_);
    peer.acked_lsn = last;
  }
  acks_cv_.notify_all();
  return Status::OK();
}

Status ReplicationPrimary::SendHeartbeat(Peer& peer, TcpConnection& conn) {
  uint64_t durable;
  {
    std::lock_guard<std::mutex> lock(mu_);
    durable = local_durable_;
  }
  JsonValue msg = JsonValue::MakeObject();
  msg.Set("epoch", JsonValue(source_.epoch));
  msg.Set("durable", JsonValue(durable));
  ADEPT_RETURN_IF_ERROR(conn.SendFrame(kMsgHeartbeat, msg.Dump()));
  ADEPT_ASSIGN_OR_RETURN(NetFrame ack, conn.ReadFrame(options_.io_timeout_ms));
  if (ack.type != kMsgAck) {
    return Status::Corruption("expected ACK of HEARTBEAT");
  }
  peer.health.Touch();
  acks_cv_.notify_all();
  return Status::OK();
}

}  // namespace adept
