// Per-shard WAL replication: primary side.
//
// A ReplicationPrimary attaches to one shard's group-commit WalWriter as
// its WalCommitHook and streams every locally durable batch, in LSN order,
// to N replica peers over the net/transport.h framing. Replica acks feed a
// configurable quorum that extends WaitDurable's meaning: with
// ReplicationOptions::quorum == q, a commit wait returns once the record
// is durable on the primary's disk AND acked by at least q-1 replicas
// (the primary's own copy counts toward the quorum, so q == 1 is
// local-only durability with asynchronous shipping).
//
// Wire protocol (all payloads are single JSON objects; the frame type is
// the message discriminator — see kMsg* below):
//
//   primary -> HELLO    {"shard": k, "epoch": e, "durable": lsn}
//   replica -> STATUS   {"epoch": e', "last": lsn'}
//   primary -> RESUME   {"epoch": e, "from": lsn'}          (stream path)
//          or  SNAPSHOT {"epoch": e, "cover": c, "blob": s} (reset path)
//   replica -> ACK      {"last": lsn}
//   repeat:  primary -> BATCH {"first": l, "frames": [{"l": lsn, "p": raw}]}
//            replica -> ACK   {"last": lsn}
//
// Catch-up decision (primary, after STATUS): a peer resumes from its last
// acked LSN when the primary can still produce the frames above it (from
// the in-memory tail buffer or the on-disk WAL). It gets a full snapshot
// transfer instead when (a) its epoch disagrees with the primary's and it
// has history (a stale pre-failover lineage), (b) its last LSN exceeds
// the primary's durable LSN (divergent suffix — an old primary rejoining
// after a promotion), or (c) the frames it needs were checkpoint-
// truncated away. The snapshot reset forces a fresh checkpoint on the
// shard, ships the snapshot blob, and streaming restarts from the
// snapshot's covered LSN.
//
// Epochs: a monotonically increasing failover counter persisted in
// "<wal_base>.replmeta" next to the cluster's base WAL path. Promoting a
// replica's file set (PromoteReplicaFiles) bumps it, so a promoted
// cluster's primaries carry a higher epoch than any peer that last spoke
// to the dead primary — which is exactly the divergence signal (b)/(a)
// above. Replicas adopt the primary's epoch when they accept a RESUME or
// SNAPSHOT.
//
// What replicates: the per-shard engine WAL/snapshot pair only. The
// cluster's org file and worklist claim journal are node-local — after a
// failover, claims are lost and offers are re-derived from the recovered
// instance state (see src/repl/README.md for the contract).
//
// Threading: one sender thread per peer; OnDurableBatch only appends to a
// bounded in-memory tail buffer (the WalWriter contract: never block the
// drain), peers fall back to WriteAheadLog::ReadTail when the buffer no
// longer reaches back to their ack point. Stop() (or destruction) joins
// every peer thread; in-flight WaitRemote calls return kUnavailable.

#ifndef ADEPT_REPL_REPLICATION_H_
#define ADEPT_REPL_REPLICATION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "net/transport.h"
#include "repl/health.h"
#include "storage/wal.h"
#include "storage/wal_writer.h"

namespace adept {

// Frame types of the replication protocol.
constexpr uint32_t kMsgHello = 1;
constexpr uint32_t kMsgStatus = 2;
constexpr uint32_t kMsgResume = 3;
constexpr uint32_t kMsgSnapshot = 4;
constexpr uint32_t kMsgBatch = 5;
constexpr uint32_t kMsgAck = 6;
constexpr uint32_t kMsgError = 7;
// Liveness probe, primary -> replica, sent when a peer is caught up and
// the stream has been idle for heartbeat_interval_ms. The replica answers
// with a normal ACK {"last": lsn}; both directions feed a HealthTracker.
constexpr uint32_t kMsgHeartbeat = 8;

// The replication layer reports every refusal as kUnavailable; these
// predicates tell the flavors apart (stable message markers, part of the
// status contract — the client retry layer keys on them):
//
//   quorum timeout — the record IS on the primary's disk but fewer than
//     quorum copies acked it: maybe-applied, survives a failover iff the
//     promoted replica's prefix covers its LSN.
//   fenced — a newer epoch owns the shard; the write was rejected before
//     any mutation: definitely-not-applied, safe to retry elsewhere.
//   no live quorum — not enough live replicas to ever reach quorum; the
//     write was rejected before any mutation: definitely-not-applied.
bool IsQuorumTimeout(const Status& status);
bool IsFenced(const Status& status);
bool IsNoQuorum(const Status& status);
Status FencedStatus(uint64_t shard, uint64_t newer_epoch, uint64_t own_epoch);
Status NoLiveQuorumStatus(uint64_t shard, int live_copies, int quorum);

struct ReplicationOptions {
  // Replica endpoints; every shard's primary dials each of them (a replica
  // node serves all shards of the cluster on one port).
  std::vector<NetEndpoint> replicas;
  // Copies — including the primary's local disk — that must hold a record
  // before a commit wait returns. 1 = local durability only (shipping is
  // asynchronous); replicas.size() + 1 = every copy. Must satisfy
  // 1 <= quorum <= replicas.size() + 1.
  int quorum = 1;
  int connect_timeout_ms = 1000;
  // Per-frame read/write timeout on peer connections.
  int io_timeout_ms = 5000;
  // WaitRemote gives up (kUnavailable) after this long without a quorum.
  int ack_timeout_ms = 10000;
  // Backoff between reconnect attempts to a down peer.
  int retry_ms = 100;
  // Frames coalesced into one BATCH message.
  size_t max_batch_frames = 512;
  // In-memory tail retained for streaming before peers must fall back to
  // reading the WAL file. Bounded twice: by frame count and by payload
  // bytes — whichever trips first evicts from the front (a dead peer can
  // no longer pin unbounded memory; it catches up from the WAL file or a
  // snapshot reset instead; see tail_evictions in PrimaryStatus).
  size_t tail_buffer_frames = 8192;
  size_t tail_buffer_bytes = 32u << 20;  // 32 MiB
  // Idle-stream liveness probe interval and the health thresholds the
  // primary applies to its replicas (alive -> suspect -> dead).
  int heartbeat_interval_ms = 250;
  int suspect_after_ms = 1000;
  int dead_after_ms = 3000;
  // Applied to every peer connection this primary dials (tests).
  FaultInjector* fault_injector = nullptr;
  // Per-peer override of fault_injector, indexed like `replicas` (tests:
  // partition one peer while the others stream normally). Entries may be
  // null; missing entries fall back to fault_injector.
  std::vector<FaultInjector*> peer_fault_injectors;
};

// Point-in-time health of one replica peer as the primary sees it.
struct PeerStatus {
  NetEndpoint endpoint;
  bool streaming = false;
  PeerHealth health = PeerHealth::kDead;
  uint64_t acked_lsn = 0;
  int64_t silence_ms = 0;
};

// Point-in-time status of one shard's replication primary — the surface
// the failover coordinator, AV013 lint rule, and tests read.
struct PrimaryStatus {
  uint64_t shard = 0;
  uint64_t epoch = 0;
  uint64_t local_durable = 0;
  uint64_t quorum_acked = 0;
  int quorum = 1;
  bool fenced = false;
  // Enough live (streaming, not dead) copies — counting the primary's
  // own — to reach the quorum.
  bool quorum_live = false;
  uint64_t tail_evictions = 0;
  size_t tail_frames = 0;
  size_t tail_bytes = 0;
  std::vector<PeerStatus> peers;

  JsonValue ToJson() const;
};

// What a ReplicationPrimary replicates: one shard's WAL + snapshot.
struct ReplicationSource {
  uint64_t shard = 0;
  // The shard's live WAL file; read (never written) for peer catch-up.
  std::string wal_path;
  // The shard's snapshot file; shipped whole on a snapshot reset. Empty
  // disables the snapshot fallback (a gapped peer then stays down).
  std::string snapshot_path;
  // Forces a fresh checkpoint of the shard (snapshot written, WAL
  // truncated) so a snapshot transfer covers everything; called from peer
  // threads, must be internally synchronized. Null: ship the file as-is.
  std::function<Status()> checkpoint;
  // This primary's failover epoch (see header comment).
  uint64_t epoch = 1;
  // The shard's locally durable LSN at attach time.
  uint64_t start_lsn = 0;
};

class ReplicationPrimary : public WalCommitHook {
 public:
  // Validates the options and starts one sender thread per replica. The
  // caller attaches the result to the shard's writer
  // (WalWriter::SetCommitHook) and must detach before destroying it.
  static Result<std::unique_ptr<ReplicationPrimary>> Start(
      ReplicationSource source, const ReplicationOptions& options);

  ~ReplicationPrimary() override;
  ReplicationPrimary(const ReplicationPrimary&) = delete;
  ReplicationPrimary& operator=(const ReplicationPrimary&) = delete;

  // Closes peer connections, joins sender threads, fails in-flight
  // WaitRemote calls with kUnavailable. Idempotent.
  void Stop();

  // WalCommitHook. OnDurableBatch buffers and returns; WaitRemote blocks
  // until quorum-1 replicas acked `lsn` or ack_timeout_ms elapsed.
  void OnDurableBatch(const std::vector<WalFrame>& frames) override;
  Status WaitRemote(uint64_t lsn) override;

  // Highest LSN acked by at least quorum-1 replicas (the remote half of
  // the quorum; local durability is the writer's durable_lsn()).
  uint64_t quorum_acked_lsn() const;
  // Peers currently past the handshake and streaming.
  int connected_peers() const;
  // Test helper: blocks until `n` peers are streaming (kUnavailable on
  // timeout).
  Status WaitForPeers(int n, int timeout_ms);

  uint64_t epoch() const { return source_.epoch; }

  // This primary observed a higher epoch on a peer: a promotion happened
  // behind its back and a newer primary owns the shard. Once fenced, every
  // WaitRemote fails fast with FencedStatus and no peer is ever snapshot-
  // reset (the one action that could destroy the newer lineage's data).
  bool fenced() const { return fenced_.load(std::memory_order_acquire); }

  // Whether enough copies (local + not-dead peers) are live to reach the
  // quorum. False = writes cannot commit; reads degrade. Health-based, not
  // connection-based: a freshly attached primary is optimistic (every
  // peer starts `alive` and only decays to `dead` after dead_after_ms of
  // real silence), and a transient reconnect does not flip the verdict.
  bool HasLiveQuorum() const;

  // Fail-fast write gate: FencedStatus when fenced, NoLiveQuorumStatus
  // when below a live quorum, OK otherwise. Callers check this BEFORE
  // mutating, so a refusal means definitely-not-applied.
  Status CheckWritable() const;

  // Frames evicted from the tail buffer before every peer acked them
  // (each one forces the affected peers onto the WAL/snapshot path).
  uint64_t tail_evictions() const;

  PrimaryStatus GetStatus() const;

 private:
  struct Peer {
    NetEndpoint endpoint;
    std::thread thread;
    // Guarded by mu_ (the connection object itself is used only by the
    // peer thread; the pointer is shared so Stop() can Close() it).
    TcpConnection* conn = nullptr;
    uint64_t acked_lsn = 0;   // guarded by mu_
    bool streaming = false;   // guarded by mu_; handshake completed
    HealthTracker health;     // internally synchronized
    FaultInjector* injector = nullptr;  // set once at construction
  };

  ReplicationPrimary(ReplicationSource source,
                     const ReplicationOptions& options);

  void PeerLoop(Peer& peer);
  // Dial, publish the connection (so Stop can close it), run the session,
  // unpublish. Returns only on a session error or stop.
  Status ConnectPeer(Peer& peer);
  // Handshake (HELLO/STATUS + catch-up negotiation) then the streaming
  // loop; runs until the connection dies or the primary stops.
  Status RunSession(Peer& peer, TcpConnection& conn);
  // The catch-up decision for a fresh session (see header comment).
  Status NegotiateSession(Peer& peer, TcpConnection& conn,
                          uint64_t replica_epoch, uint64_t replica_last);
  // Checkpoint + ship the snapshot blob; leaves the peer acked at the
  // snapshot's covered LSN.
  Status SendSnapshotReset(Peer& peer, TcpConnection& conn);
  // One BATCH/ACK round trip; frames must be contiguous from acked+1.
  Status SendBatch(Peer& peer, TcpConnection& conn,
                   const std::vector<WalFrame>& frames);
  // One HEARTBEAT/ACK round trip (idle stream liveness probe).
  Status SendHeartbeat(Peer& peer, TcpConnection& conn);
  // Collects the next frames for `peer` from the tail buffer or the WAL
  // file; empty when the peer is caught up. kCorruption-class gaps
  // trigger a snapshot reset inside.
  Result<std::vector<WalFrame>> CollectFrames(Peer& peer,
                                              TcpConnection& conn);
  // Marks this primary fenced (a newer epoch was observed on `peer`).
  Status FenceSelf(const Peer& peer, uint64_t newer_epoch);

  const ReplicationSource source_;
  const ReplicationOptions options_;

  mutable std::mutex mu_;
  std::condition_variable frames_cv_;  // new durable frames / stop
  std::condition_variable acks_cv_;    // peer acks / connects / stop
  std::deque<WalFrame> tail_;          // guarded by mu_; bounded
  size_t tail_bytes_ = 0;              // guarded by mu_
  uint64_t tail_evictions_ = 0;        // guarded by mu_
  uint64_t local_durable_ = 0;         // guarded by mu_
  bool stopping_ = false;              // guarded by mu_
  std::atomic<bool> fenced_{false};
  std::atomic<uint64_t> fenced_by_{0};  // the newer epoch that fenced us
  std::vector<std::unique_ptr<Peer>> peers_;
};

// Reads the failover epoch persisted at "<wal_base>.replmeta"; writes and
// returns epoch 1 when the file does not exist yet.
Result<uint64_t> ReadReplicationEpoch(const std::string& wal_base);

// Promotion: bumps the failover epoch of the file set at `wal_base`
// (a stopped replica's — or a recovering primary's — base WAL path) and
// returns the new epoch, at least `at_least` (a coordinator that saw a
// higher epoch elsewhere in the cluster passes it so the promoted lineage
// dominates every older one). The caller then runs AdeptCluster::Recover
// over these paths and re-attaches replication; any peer that last spoke
// to the previous primary now fails the epoch check and is snapshot-
// reset, which is how a divergent unacked suffix on a rejoining old
// primary is discarded.
Result<uint64_t> PromoteReplicaFiles(const std::string& wal_base,
                                     uint64_t at_least = 0);

}  // namespace adept

#endif  // ADEPT_REPL_REPLICATION_H_
