// Per-shard WAL replication: primary side.
//
// A ReplicationPrimary attaches to one shard's group-commit WalWriter as
// its WalCommitHook and streams every locally durable batch, in LSN order,
// to N replica peers over the net/transport.h framing. Replica acks feed a
// configurable quorum that extends WaitDurable's meaning: with
// ReplicationOptions::quorum == q, a commit wait returns once the record
// is durable on the primary's disk AND acked by at least q-1 replicas
// (the primary's own copy counts toward the quorum, so q == 1 is
// local-only durability with asynchronous shipping).
//
// Wire protocol (all payloads are single JSON objects; the frame type is
// the message discriminator — see kMsg* below):
//
//   primary -> HELLO    {"shard": k, "epoch": e, "durable": lsn}
//   replica -> STATUS   {"epoch": e', "last": lsn'}
//   primary -> RESUME   {"epoch": e, "from": lsn'}          (stream path)
//          or  SNAPSHOT {"epoch": e, "cover": c, "blob": s} (reset path)
//   replica -> ACK      {"last": lsn}
//   repeat:  primary -> BATCH {"first": l, "frames": [{"l": lsn, "p": raw}]}
//            replica -> ACK   {"last": lsn}
//
// Catch-up decision (primary, after STATUS): a peer resumes from its last
// acked LSN when the primary can still produce the frames above it (from
// the in-memory tail buffer or the on-disk WAL). It gets a full snapshot
// transfer instead when (a) its epoch disagrees with the primary's and it
// has history (a stale pre-failover lineage), (b) its last LSN exceeds
// the primary's durable LSN (divergent suffix — an old primary rejoining
// after a promotion), or (c) the frames it needs were checkpoint-
// truncated away. The snapshot reset forces a fresh checkpoint on the
// shard, ships the snapshot blob, and streaming restarts from the
// snapshot's covered LSN.
//
// Epochs: a monotonically increasing failover counter persisted in
// "<wal_base>.replmeta" next to the cluster's base WAL path. Promoting a
// replica's file set (PromoteReplicaFiles) bumps it, so a promoted
// cluster's primaries carry a higher epoch than any peer that last spoke
// to the dead primary — which is exactly the divergence signal (b)/(a)
// above. Replicas adopt the primary's epoch when they accept a RESUME or
// SNAPSHOT.
//
// What replicates: the per-shard engine WAL/snapshot pair only. The
// cluster's org file and worklist claim journal are node-local — after a
// failover, claims are lost and offers are re-derived from the recovered
// instance state (see src/repl/README.md for the contract).
//
// Threading: one sender thread per peer; OnDurableBatch only appends to a
// bounded in-memory tail buffer (the WalWriter contract: never block the
// drain), peers fall back to WriteAheadLog::ReadTail when the buffer no
// longer reaches back to their ack point. Stop() (or destruction) joins
// every peer thread; in-flight WaitRemote calls return kUnavailable.

#ifndef ADEPT_REPL_REPLICATION_H_
#define ADEPT_REPL_REPLICATION_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "net/transport.h"
#include "storage/wal.h"
#include "storage/wal_writer.h"

namespace adept {

// Frame types of the replication protocol.
constexpr uint32_t kMsgHello = 1;
constexpr uint32_t kMsgStatus = 2;
constexpr uint32_t kMsgResume = 3;
constexpr uint32_t kMsgSnapshot = 4;
constexpr uint32_t kMsgBatch = 5;
constexpr uint32_t kMsgAck = 6;
constexpr uint32_t kMsgError = 7;

struct ReplicationOptions {
  // Replica endpoints; every shard's primary dials each of them (a replica
  // node serves all shards of the cluster on one port).
  std::vector<NetEndpoint> replicas;
  // Copies — including the primary's local disk — that must hold a record
  // before a commit wait returns. 1 = local durability only (shipping is
  // asynchronous); replicas.size() + 1 = every copy. Must satisfy
  // 1 <= quorum <= replicas.size() + 1.
  int quorum = 1;
  int connect_timeout_ms = 1000;
  // Per-frame read/write timeout on peer connections.
  int io_timeout_ms = 5000;
  // WaitRemote gives up (kUnavailable) after this long without a quorum.
  int ack_timeout_ms = 10000;
  // Backoff between reconnect attempts to a down peer.
  int retry_ms = 100;
  // Frames coalesced into one BATCH message.
  size_t max_batch_frames = 512;
  // In-memory tail retained for streaming before peers must fall back to
  // reading the WAL file.
  size_t tail_buffer_frames = 8192;
  // Applied to every peer connection this primary dials (tests).
  FaultInjector* fault_injector = nullptr;
};

// What a ReplicationPrimary replicates: one shard's WAL + snapshot.
struct ReplicationSource {
  uint64_t shard = 0;
  // The shard's live WAL file; read (never written) for peer catch-up.
  std::string wal_path;
  // The shard's snapshot file; shipped whole on a snapshot reset. Empty
  // disables the snapshot fallback (a gapped peer then stays down).
  std::string snapshot_path;
  // Forces a fresh checkpoint of the shard (snapshot written, WAL
  // truncated) so a snapshot transfer covers everything; called from peer
  // threads, must be internally synchronized. Null: ship the file as-is.
  std::function<Status()> checkpoint;
  // This primary's failover epoch (see header comment).
  uint64_t epoch = 1;
  // The shard's locally durable LSN at attach time.
  uint64_t start_lsn = 0;
};

class ReplicationPrimary : public WalCommitHook {
 public:
  // Validates the options and starts one sender thread per replica. The
  // caller attaches the result to the shard's writer
  // (WalWriter::SetCommitHook) and must detach before destroying it.
  static Result<std::unique_ptr<ReplicationPrimary>> Start(
      ReplicationSource source, const ReplicationOptions& options);

  ~ReplicationPrimary() override;
  ReplicationPrimary(const ReplicationPrimary&) = delete;
  ReplicationPrimary& operator=(const ReplicationPrimary&) = delete;

  // Closes peer connections, joins sender threads, fails in-flight
  // WaitRemote calls with kUnavailable. Idempotent.
  void Stop();

  // WalCommitHook. OnDurableBatch buffers and returns; WaitRemote blocks
  // until quorum-1 replicas acked `lsn` or ack_timeout_ms elapsed.
  void OnDurableBatch(const std::vector<WalFrame>& frames) override;
  Status WaitRemote(uint64_t lsn) override;

  // Highest LSN acked by at least quorum-1 replicas (the remote half of
  // the quorum; local durability is the writer's durable_lsn()).
  uint64_t quorum_acked_lsn() const;
  // Peers currently past the handshake and streaming.
  int connected_peers() const;
  // Test helper: blocks until `n` peers are streaming (kUnavailable on
  // timeout).
  Status WaitForPeers(int n, int timeout_ms);

  uint64_t epoch() const { return source_.epoch; }

 private:
  struct Peer {
    NetEndpoint endpoint;
    std::thread thread;
    // Guarded by mu_ (the connection object itself is used only by the
    // peer thread; the pointer is shared so Stop() can Close() it).
    TcpConnection* conn = nullptr;
    uint64_t acked_lsn = 0;   // guarded by mu_
    bool streaming = false;   // guarded by mu_; handshake completed
  };

  ReplicationPrimary(ReplicationSource source,
                     const ReplicationOptions& options);

  void PeerLoop(Peer& peer);
  // Dial, publish the connection (so Stop can close it), run the session,
  // unpublish. Returns only on a session error or stop.
  Status ConnectPeer(Peer& peer);
  // Handshake (HELLO/STATUS + catch-up negotiation) then the streaming
  // loop; runs until the connection dies or the primary stops.
  Status RunSession(Peer& peer, TcpConnection& conn);
  // The catch-up decision for a fresh session (see header comment).
  Status NegotiateSession(Peer& peer, TcpConnection& conn,
                          uint64_t replica_epoch, uint64_t replica_last);
  // Checkpoint + ship the snapshot blob; leaves the peer acked at the
  // snapshot's covered LSN.
  Status SendSnapshotReset(Peer& peer, TcpConnection& conn);
  // One BATCH/ACK round trip; frames must be contiguous from acked+1.
  Status SendBatch(Peer& peer, TcpConnection& conn,
                   const std::vector<WalFrame>& frames);
  // Collects the next frames for `peer` from the tail buffer or the WAL
  // file; empty when the peer is caught up. kCorruption-class gaps
  // trigger a snapshot reset inside.
  Result<std::vector<WalFrame>> CollectFrames(Peer& peer,
                                              TcpConnection& conn);

  const ReplicationSource source_;
  const ReplicationOptions options_;

  mutable std::mutex mu_;
  std::condition_variable frames_cv_;  // new durable frames / stop
  std::condition_variable acks_cv_;    // peer acks / connects / stop
  std::deque<WalFrame> tail_;          // guarded by mu_; bounded
  uint64_t local_durable_ = 0;         // guarded by mu_
  bool stopping_ = false;              // guarded by mu_
  std::vector<std::unique_ptr<Peer>> peers_;
};

// Reads the failover epoch persisted at "<wal_base>.replmeta"; writes and
// returns epoch 1 when the file does not exist yet.
Result<uint64_t> ReadReplicationEpoch(const std::string& wal_base);

// Promotion: bumps the failover epoch of the file set at `wal_base`
// (a stopped replica's — or a recovering primary's — base WAL path) and
// returns the new epoch. The caller then runs AdeptCluster::Recover over
// these paths and re-attaches replication; any peer that last spoke to
// the previous primary now fails the epoch check and is snapshot-reset,
// which is how a divergent unacked suffix on a rejoining old primary is
// discarded.
Result<uint64_t> PromoteReplicaFiles(const std::string& wal_base);

}  // namespace adept

#endif  // ADEPT_REPL_REPLICATION_H_
