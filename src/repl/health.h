// Per-peer failure detection for the replication layer.
//
// A HealthTracker records the last instant a peer proved it was alive
// (any frame received from it — acks, STATUS replies, heartbeats) and
// classifies the silence since then into a three-state machine:
//
//   alive   — heard from within suspect_after_ms
//   suspect — silent for suspect_after_ms..dead_after_ms; the peer may be
//             slow, partitioned, or mid-GC — no action yet, but the
//             status surface flags it (AV013 replication-degraded)
//   dead    — silent past dead_after_ms; failover logic (the
//             FailoverCoordinator) may act on this verdict
//
// The assessment is recomputed on read from a single atomic timestamp, so
// Touch() from a session thread and Assess() from a monitor thread never
// contend. Timeouts are passed per call: the same tracker serves
// configurations with different thresholds (primary watching replicas,
// replicas watching their primary).

#ifndef ADEPT_REPL_HEALTH_H_
#define ADEPT_REPL_HEALTH_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace adept {

enum class PeerHealth { kAlive, kSuspect, kDead };

inline const char* PeerHealthToString(PeerHealth health) {
  switch (health) {
    case PeerHealth::kAlive:
      return "alive";
    case PeerHealth::kSuspect:
      return "suspect";
    case PeerHealth::kDead:
      return "dead";
  }
  return "unknown";
}

class HealthTracker {
 public:
  HealthTracker() : last_contact_ms_(NowMs()) {}

  // The peer proved liveness (a frame arrived from it).
  void Touch() { last_contact_ms_.store(NowMs(), std::memory_order_release); }

  // Milliseconds of silence since the last proof of liveness.
  int64_t SilenceMs() const {
    return NowMs() - last_contact_ms_.load(std::memory_order_acquire);
  }

  PeerHealth Assess(int suspect_after_ms, int dead_after_ms) const {
    const int64_t silence = SilenceMs();
    if (silence >= dead_after_ms) return PeerHealth::kDead;
    if (silence >= suspect_after_ms) return PeerHealth::kSuspect;
    return PeerHealth::kAlive;
  }

 private:
  static int64_t NowMs() {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  std::atomic<int64_t> last_contact_ms_;
};

}  // namespace adept

#endif  // ADEPT_REPL_HEALTH_H_
