#include "storage/wal.h"

#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/logging.h"
#include "common/string_util.h"

namespace adept {

namespace {

// A frame header field (LSN or payload length) may carry at most this many
// digits: 19 digits fit every value below 10^19 in a uint64_t without
// wrapping, so a forged header with a longer digit run is rejected before
// the accumulator can overflow.
constexpr size_t kMaxHeaderDigits = 19;

// Upper bound on a single payload; anything larger is a forged header.
constexpr uint64_t kMaxPayloadBytes = uint64_t{1} << 30;

// Parses the decimal run content[begin, end) into `out`. Rejects empty
// runs, non-digits, and runs long enough to overflow (see above).
bool ParseHeaderField(const std::string& content, size_t begin, size_t end,
                      uint64_t* out) {
  if (begin >= end || end - begin > kMaxHeaderDigits) return false;
  uint64_t value = 0;
  for (size_t i = begin; i < end; ++i) {
    char c = content[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

struct ParsedFrames {
  std::vector<WalRecord> records;
  // Offset one past the last complete frame; trailing bytes beyond it are
  // damaged (crash-truncated or corrupt) and safe to discard.
  size_t valid_bytes = 0;
};

// Decodes "<lsn>:<length>:<payload>\n" frames until the first damaged one.
// All bounds checks subtract from content.size() rather than adding to the
// parsed fields, so a forged header can never wrap the comparison.
ParsedFrames ParseFrames(const std::string& content) {
  ParsedFrames result;
  uint64_t previous_lsn = 0;
  size_t pos = 0;
  while (pos < content.size()) {
    size_t lsn_end = content.find(':', pos);
    if (lsn_end == std::string::npos) break;  // truncated header
    uint64_t lsn = 0;
    if (!ParseHeaderField(content, pos, lsn_end, &lsn) ||
        lsn <= previous_lsn) {
      ADEPT_LOG(kWarning) << "WAL: damaged frame header at offset " << pos
                          << "; truncating";
      break;
    }
    size_t length_end = content.find(':', lsn_end + 1);
    if (length_end == std::string::npos) break;  // truncated header
    uint64_t length = 0;
    if (!ParseHeaderField(content, lsn_end + 1, length_end, &length) ||
        length > kMaxPayloadBytes) {
      ADEPT_LOG(kWarning) << "WAL: damaged frame header at offset " << pos
                          << "; truncating";
      break;
    }
    size_t payload_start = length_end + 1;
    // payload_start <= content.size() because length_end < content.size().
    size_t remaining = content.size() - payload_start;
    if (length >= remaining) break;  // truncated tail (payload + '\n')
    if (content[payload_start + static_cast<size_t>(length)] != '\n') {
      ADEPT_LOG(kWarning) << "WAL: missing frame terminator at offset " << pos
                          << "; truncating";
      break;
    }
    auto parsed = JsonValue::Parse(
        content.substr(payload_start, static_cast<size_t>(length)));
    if (!parsed.ok()) {
      ADEPT_LOG(kWarning) << "WAL: unparsable record at offset " << pos
                          << "; truncating";
      break;
    }
    result.records.push_back({lsn, std::move(parsed).value()});
    previous_lsn = lsn;
    pos = payload_start + static_cast<size_t>(length) + 1;
    result.valid_bytes = pos;
  }
  return result;
}

Result<std::string> ReadWholeFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    // Only a genuinely absent log is "no records"; EACCES/EMFILE/EISDIR
    // must not make recovery silently come up empty.
    if (errno == ENOENT) return Status::NotFound("no WAL at " + path);
    return Status::Corruption(StrFormat("cannot open WAL '%s': %s",
                                        path.c_str(), std::strerror(errno)));
  }
  std::string content;
  char buffer[1 << 16];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    content.append(buffer, n);
  }
  // A transient read error must not masquerade as a short log: Open()
  // would otherwise "repair" (truncate) away frames it simply failed to
  // read.
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    return Status::Corruption(
        StrFormat("read error while scanning WAL '%s'", path.c_str()));
  }
  return content;
}

Status DeadHandle(const std::string& path) {
  return Status::Corruption(
      StrFormat("WAL '%s' handle is dead after an earlier I/O failure; "
                "Truncate() can revive it",
                path.c_str()));
}

std::atomic<uint64_t> g_scan_count{0};

}  // namespace

const char* SyncModeToString(SyncMode mode) {
  switch (mode) {
    case SyncMode::kNone:
      return "none";
    case SyncMode::kFlush:
      return "flush";
    case SyncMode::kFsync:
      return "fsync";
  }
  return "unknown";
}

Result<WalScan> WriteAheadLog::Scan(const std::string& path) {
  g_scan_count.fetch_add(1, std::memory_order_relaxed);
  WalScan scan;
  auto content = ReadWholeFile(path);
  if (!content.ok()) {
    if (content.status().code() == StatusCode::kNotFound) return scan;
    return content.status();  // unreadable is not the same as absent
  }
  scan.exists = true;
  scan.total_bytes = content->size();
  ParsedFrames parsed = ParseFrames(*content);
  scan.valid_bytes = parsed.valid_bytes;
  if (!parsed.records.empty()) scan.last_lsn = parsed.records.back().lsn;
  scan.records = std::move(parsed.records);
  return scan;
}

uint64_t WriteAheadLog::scan_count() {
  return g_scan_count.load(std::memory_order_relaxed);
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path) {
  ADEPT_ASSIGN_OR_RETURN(WalScan scan, Scan(path));
  return OpenScanned(path, scan);
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::OpenScanned(
    const std::string& path, const WalScan& scan) {
  if (scan.exists && scan.valid_bytes < scan.total_bytes) {
    // Appending after a damaged tail would hide the new frames from every
    // reader; chop the tail back to the last complete frame first.
    ADEPT_LOG(kWarning) << "WAL '" << path << "': discarding "
                        << scan.total_bytes - scan.valid_bytes
                        << " damaged tail bytes";
    std::error_code ec;
    std::filesystem::resize_file(path, scan.valid_bytes, ec);
    if (ec) {
      return Status::Corruption(
          StrFormat("cannot repair damaged WAL tail of '%s': %s", path.c_str(),
                    ec.message().c_str()));
    }
  }
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return Status::Corruption(StrFormat("cannot open WAL '%s': %s",
                                        path.c_str(), std::strerror(errno)));
  }
  return std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(path, file, scan.last_lsn));
}

WriteAheadLog::~WriteAheadLog() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<uint64_t> WriteAheadLog::Append(const JsonValue& record) {
  const uint64_t lsn = last_lsn_ + 1;
  ADEPT_RETURN_IF_ERROR(AppendFrame(lsn, record.Dump()));
  return lsn;
}

Status WriteAheadLog::AppendFrame(uint64_t lsn, const std::string& payload) {
  if (file_ == nullptr) return DeadHandle(path_);
  if (lsn <= last_lsn_) {
    return Status::InvalidArgument(
        StrFormat("non-monotonic WAL LSN %llu (last is %llu)",
                  static_cast<unsigned long long>(lsn),
                  static_cast<unsigned long long>(last_lsn_)));
  }
  std::string framed =
      StrFormat("%llu:%zu:", static_cast<unsigned long long>(lsn),
                payload.size()) +
      payload + "\n";
  if (std::fwrite(framed.data(), 1, framed.size(), file_) != framed.size()) {
    // A half-written frame poisons the tail: kill the handle so later
    // appends fail loudly instead of writing unreachable records.
    std::fclose(file_);
    file_ = nullptr;
    return Status::Corruption("WAL write failed");
  }
  last_lsn_ = lsn;
  ++records_written_;
  return Status::OK();
}

Status WriteAheadLog::Sync(SyncMode mode) {
  if (file_ == nullptr) return DeadHandle(path_);
  if (mode == SyncMode::kNone) return Status::OK();
  if (std::fflush(file_) != 0) {
    std::fclose(file_);
    file_ = nullptr;
    return Status::Corruption("WAL flush failed");
  }
  if (mode == SyncMode::kFsync) {
#if defined(__unix__) || defined(__APPLE__)
    if (fsync(fileno(file_)) != 0) {
      std::fclose(file_);
      file_ = nullptr;
      return Status::Corruption(
          StrFormat("WAL fsync failed: %s", std::strerror(errno)));
    }
#else
    // Refuse rather than silently degrade to kFlush: callers were promised
    // power-failure durability.
    return Status::Unimplemented("fsync is not supported on this platform");
#endif
  }
  return Status::OK();
}

Status WriteAheadLog::Truncate() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) {
    // The handle stays dead; Append/Sync report kCorruption instead of
    // crashing on the null FILE*, and a later Truncate() may still revive.
    return Status::Corruption(
        StrFormat("cannot reopen WAL '%s' for truncation: %s", path_.c_str(),
                  std::strerror(errno)));
  }
  records_written_ = 0;
  // last_lsn_ survives on purpose; see header comment.
  return Status::OK();
}

Status WriteAheadLog::RenameTo(const std::string& new_path) {
  std::error_code ec;
  std::filesystem::rename(path_, new_path, ec);
  if (ec) {
    return Status::Corruption(StrFormat("cannot rename WAL '%s' to '%s': %s",
                                        path_.c_str(), new_path.c_str(),
                                        ec.message().c_str()));
  }
  path_ = new_path;
  return Status::OK();
}

Result<WalTail> WriteAheadLog::ReadTail(const std::string& path,
                                        uint64_t after_lsn) {
  WalTail tail;
  auto content = ReadWholeFile(path);
  if (!content.ok()) {
    if (content.status().code() == StatusCode::kNotFound) return tail;
    return content.status();
  }
  tail.exists = true;
  // Same frame walk as ParseFrames, but the payload stays raw bytes: the
  // replication layer ships (and the replica re-appends) the exact frame
  // the primary persisted, so checksums and replay see identical input.
  uint64_t previous_lsn = 0;
  size_t pos = 0;
  while (pos < content->size()) {
    size_t lsn_end = content->find(':', pos);
    if (lsn_end == std::string::npos) break;
    uint64_t lsn = 0;
    if (!ParseHeaderField(*content, pos, lsn_end, &lsn) || lsn <= previous_lsn)
      break;
    size_t length_end = content->find(':', lsn_end + 1);
    if (length_end == std::string::npos) break;
    uint64_t length = 0;
    if (!ParseHeaderField(*content, lsn_end + 1, length_end, &length) ||
        length > kMaxPayloadBytes) {
      break;
    }
    size_t payload_start = length_end + 1;
    size_t remaining = content->size() - payload_start;
    if (length >= remaining) break;
    if ((*content)[payload_start + static_cast<size_t>(length)] != '\n') break;
    if (tail.first_lsn == 0) tail.first_lsn = lsn;
    tail.last_lsn = lsn;
    if (lsn > after_lsn) {
      tail.frames.push_back(
          {lsn, content->substr(payload_start, static_cast<size_t>(length))});
    }
    previous_lsn = lsn;
    pos = payload_start + static_cast<size_t>(length) + 1;
  }
  return tail;
}

Result<std::vector<WalRecord>> WriteAheadLog::ReadRecords(
    const std::string& path) {
  ADEPT_ASSIGN_OR_RETURN(WalScan scan, Scan(path));
  return std::move(scan.records);
}

Result<std::vector<JsonValue>> WriteAheadLog::ReadAll(
    const std::string& path) {
  ADEPT_ASSIGN_OR_RETURN(std::vector<WalRecord> records, ReadRecords(path));
  std::vector<JsonValue> values;
  values.reserve(records.size());
  for (WalRecord& record : records) values.push_back(std::move(record.value));
  return values;
}

}  // namespace adept
