#include "storage/wal.h"

#include <cerrno>
#include <cstring>

#include "common/logging.h"
#include "common/string_util.h"

namespace adept {

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return Status::Corruption(
        StrFormat("cannot open WAL '%s': %s", path.c_str(),
                  std::strerror(errno)));
  }
  return std::unique_ptr<WriteAheadLog>(new WriteAheadLog(path, file));
}

WriteAheadLog::~WriteAheadLog() {
  if (file_ != nullptr) std::fclose(file_);
}

Status WriteAheadLog::Append(const JsonValue& record) {
  std::string payload = record.Dump();
  std::string framed =
      StrFormat("%zu:", payload.size()) + payload + "\n";
  if (std::fwrite(framed.data(), 1, framed.size(), file_) != framed.size()) {
    return Status::Corruption("WAL write failed");
  }
  if (std::fflush(file_) != 0) {
    return Status::Corruption("WAL flush failed");
  }
  ++records_written_;
  return Status::OK();
}

Status WriteAheadLog::Truncate() {
  std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::Corruption("cannot reopen WAL for truncation");
  }
  records_written_ = 0;
  return Status::OK();
}

Result<std::vector<JsonValue>> WriteAheadLog::ReadAll(
    const std::string& path) {
  std::vector<JsonValue> records;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return records;  // no log yet

  std::string content;
  char buffer[1 << 16];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    content.append(buffer, n);
  }
  std::fclose(file);

  size_t pos = 0;
  while (pos < content.size()) {
    size_t colon = content.find(':', pos);
    if (colon == std::string::npos) break;
    size_t length = 0;
    bool ok = colon > pos;
    for (size_t i = pos; i < colon && ok; ++i) {
      char c = content[i];
      if (c < '0' || c > '9') {
        ok = false;
      } else {
        length = length * 10 + static_cast<size_t>(c - '0');
      }
    }
    if (!ok) {
      ADEPT_LOG(kWarning) << "WAL: damaged frame header at offset " << pos
                          << "; truncating";
      break;
    }
    size_t payload_start = colon + 1;
    if (payload_start + length + 1 > content.size()) break;  // truncated tail
    if (content[payload_start + length] != '\n') {
      ADEPT_LOG(kWarning) << "WAL: missing frame terminator at offset " << pos
                          << "; truncating";
      break;
    }
    auto parsed =
        JsonValue::Parse(content.substr(payload_start, length));
    if (!parsed.ok()) {
      ADEPT_LOG(kWarning) << "WAL: unparsable record at offset " << pos
                          << "; truncating";
      break;
    }
    records.push_back(std::move(parsed).value());
    pos = payload_start + length + 1;
  }
  return records;
}

}  // namespace adept
