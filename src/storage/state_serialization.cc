#include "storage/state_serialization.h"

#include <algorithm>

namespace adept {

JsonValue MarkingToJson(const Marking& marking) {
  JsonValue nodes = JsonValue::MakeArray();
  std::vector<std::pair<NodeId, NodeState>> node_entries(
      marking.node_states().begin(), marking.node_states().end());
  std::sort(node_entries.begin(), node_entries.end());
  for (const auto& [id, state] : node_entries) {
    JsonValue e = JsonValue::MakeObject();
    e.Set("n", JsonValue(id.value()));
    e.Set("s", JsonValue(static_cast<int>(state)));
    nodes.Append(std::move(e));
  }
  JsonValue edges = JsonValue::MakeArray();
  std::vector<std::pair<EdgeId, EdgeState>> edge_entries(
      marking.edge_states().begin(), marking.edge_states().end());
  std::sort(edge_entries.begin(), edge_entries.end());
  for (const auto& [id, state] : edge_entries) {
    JsonValue e = JsonValue::MakeObject();
    e.Set("e", JsonValue(id.value()));
    e.Set("s", JsonValue(static_cast<int>(state)));
    edges.Append(std::move(e));
  }
  JsonValue j = JsonValue::MakeObject();
  j.Set("nodes", std::move(nodes));
  j.Set("edges", std::move(edges));
  return j;
}

Result<Marking> MarkingFromJson(const JsonValue& json) {
  if (!json.is_object()) return Status::Corruption("marking json malformed");
  Marking m;
  for (const JsonValue& e : json.Get("nodes").as_array()) {
    m.set_node(NodeId(static_cast<uint32_t>(e.Get("n").as_int())),
               static_cast<NodeState>(e.Get("s").as_int()));
  }
  for (const JsonValue& e : json.Get("edges").as_array()) {
    m.set_edge(EdgeId(static_cast<uint32_t>(e.Get("e").as_int())),
               static_cast<EdgeState>(e.Get("s").as_int()));
  }
  return m;
}

JsonValue TraceToJson(const ExecutionTrace& trace) {
  JsonValue events = JsonValue::MakeArray();
  for (const TraceEvent& ev : trace.events()) {
    JsonValue e = JsonValue::MakeObject();
    e.Set("q", JsonValue(ev.sequence));
    e.Set("k", JsonValue(static_cast<int>(ev.kind)));
    if (ev.node.valid()) e.Set("n", JsonValue(ev.node.value()));
    if (ev.data.valid()) e.Set("d", JsonValue(ev.data.value()));
    if (ev.branch_value != 0) e.Set("b", JsonValue(ev.branch_value));
    if (ev.iteration != 0) e.Set("i", JsonValue(ev.iteration));
    if (!ev.reset_nodes.empty()) {
      JsonValue rn = JsonValue::MakeArray();
      for (NodeId n : ev.reset_nodes) rn.Append(JsonValue(n.value()));
      e.Set("r", std::move(rn));
    }
    if (!ev.detail.empty()) e.Set("t", JsonValue(ev.detail));
    events.Append(std::move(e));
  }
  JsonValue j = JsonValue::MakeObject();
  j.Set("events", std::move(events));
  return j;
}

Result<ExecutionTrace> TraceFromJson(const JsonValue& json) {
  if (!json.is_object()) return Status::Corruption("trace json malformed");
  std::vector<TraceEvent> events;
  for (const JsonValue& e : json.Get("events").as_array()) {
    TraceEvent ev;
    ev.sequence = e.Get("q").as_int();
    ev.kind = static_cast<TraceEventKind>(e.Get("k").as_int());
    if (e.Has("n")) {
      ev.node = NodeId(static_cast<uint32_t>(e.Get("n").as_int()));
    }
    if (e.Has("d")) {
      ev.data = DataId(static_cast<uint32_t>(e.Get("d").as_int()));
    }
    ev.branch_value = static_cast<int>(e.Get("b").as_int());
    ev.iteration = static_cast<int>(e.Get("i").as_int());
    for (const JsonValue& r : e.Get("r").as_array()) {
      ev.reset_nodes.push_back(NodeId(static_cast<uint32_t>(r.as_int())));
    }
    ev.detail = e.Get("t").as_string();
    events.push_back(std::move(ev));
  }
  ExecutionTrace trace;
  trace.Restore(std::move(events));
  return trace;
}

JsonValue DataContextToJson(const DataContext& data) {
  JsonValue elements = JsonValue::MakeArray();
  std::vector<DataId> ids;
  for (const auto& [id, _] : data.elements()) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (DataId id : ids) {
    JsonValue versions = JsonValue::MakeArray();
    for (const auto& v : data.History(id)) {
      JsonValue vj = JsonValue::MakeObject();
      vj.Set("v", v.value.ToJson());
      if (v.writer.valid()) vj.Set("w", JsonValue(v.writer.value()));
      vj.Set("q", JsonValue(v.sequence));
      versions.Append(std::move(vj));
    }
    JsonValue ej = JsonValue::MakeObject();
    ej.Set("d", JsonValue(id.value()));
    ej.Set("versions", std::move(versions));
    elements.Append(std::move(ej));
  }
  JsonValue j = JsonValue::MakeObject();
  j.Set("elements", std::move(elements));
  return j;
}

Result<DataContext> DataContextFromJson(const JsonValue& json) {
  if (!json.is_object()) return Status::Corruption("data context malformed");
  DataContext data;
  for (const JsonValue& ej : json.Get("elements").as_array()) {
    DataId id(static_cast<uint32_t>(ej.Get("d").as_int()));
    for (const JsonValue& vj : ej.Get("versions").as_array()) {
      ADEPT_ASSIGN_OR_RETURN(DataValue value, DataValue::FromJson(vj.Get("v")));
      NodeId writer;
      if (vj.Has("w")) {
        writer = NodeId(static_cast<uint32_t>(vj.Get("w").as_int()));
      }
      data.Write(id, std::move(value), writer, vj.Get("q").as_int());
    }
  }
  return data;
}

JsonValue InstanceStateToJson(const ProcessInstance& instance) {
  JsonValue j = JsonValue::MakeObject();
  j.Set("marking", MarkingToJson(instance.marking()));
  j.Set("trace", TraceToJson(instance.trace()));
  j.Set("data", DataContextToJson(instance.data()));
  j.Set("started", JsonValue(instance.started()));
  JsonValue loops = JsonValue::MakeArray();
  std::vector<std::pair<NodeId, int>> loop_entries(
      instance.loop_iterations().begin(), instance.loop_iterations().end());
  std::sort(loop_entries.begin(), loop_entries.end());
  for (const auto& [node, count] : loop_entries) {
    JsonValue lj = JsonValue::MakeObject();
    lj.Set("n", JsonValue(node.value()));
    lj.Set("c", JsonValue(count));
    loops.Append(std::move(lj));
  }
  j.Set("loops", std::move(loops));
  // Logical activation stamps (absent in pre-refactor records; restore
  // defaults them deterministically).
  JsonValue asince = JsonValue::MakeArray();
  std::vector<std::pair<NodeId, int64_t>> stamp_entries(
      instance.activated_since().begin(), instance.activated_since().end());
  std::sort(stamp_entries.begin(), stamp_entries.end());
  for (const auto& [node, seq] : stamp_entries) {
    JsonValue sj = JsonValue::MakeObject();
    sj.Set("n", JsonValue(node.value()));
    sj.Set("q", JsonValue(seq));
    asince.Append(std::move(sj));
  }
  j.Set("asince", std::move(asince));
  return j;
}

Status RestoreInstanceState(ProcessInstance& instance, const JsonValue& json) {
  if (!json.is_object()) return Status::Corruption("instance state malformed");
  ADEPT_ASSIGN_OR_RETURN(Marking marking, MarkingFromJson(json.Get("marking")));
  ADEPT_ASSIGN_OR_RETURN(ExecutionTrace trace,
                         TraceFromJson(json.Get("trace")));
  ADEPT_ASSIGN_OR_RETURN(DataContext data,
                         DataContextFromJson(json.Get("data")));
  PersistentMap<NodeId, int> loops;
  for (const JsonValue& lj : json.Get("loops").as_array()) {
    loops.Set(NodeId(static_cast<uint32_t>(lj.Get("n").as_int())),
              static_cast<int>(lj.Get("c").as_int()));
  }
  PersistentMap<NodeId, int64_t> activated_since;
  if (json.Has("asince")) {
    for (const JsonValue& sj : json.Get("asince").as_array()) {
      activated_since.Set(NodeId(static_cast<uint32_t>(sj.Get("n").as_int())),
                          sj.Get("q").as_int());
    }
  }
  instance.RestoreState(std::move(marking), std::move(trace), std::move(data),
                        std::move(loops), json.Get("started").as_bool(),
                        std::move(activated_since));
  return Status::OK();
}

}  // namespace adept
