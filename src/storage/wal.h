// WriteAheadLog: append-only persistence of engine events.
//
// Records are JSON values framed as "<lsn>:<length>:<json>\n". This
// framing replaces the pre-LSN "<length>:<json>\n" format wholesale; old
// logs are not readable (checkpoint via SaveSnapshot before upgrading —
// snapshots stay compatible, a missing "wal_lsn" simply replays
// everything). The LSN
// (log sequence number) is strictly monotonic per log path and survives
// Truncate(), so a snapshot that records the LSN it covers makes replay
// unambiguous even when a checkpoint is interrupted between the snapshot
// write and the log truncation.
//
// Durability contract: Append() only buffers the frame in the stdio
// buffer; data reaches the OS (or the disk) when Sync() runs:
//
//   SyncMode::kNone    no explicit flush. Fastest; an exiting process
//                      still flushes via fclose, but a crash loses every
//                      buffered record.
//   SyncMode::kFlush   fflush to the OS page cache. Survives a process
//                      crash, not an OS crash or power failure.
//   SyncMode::kFsync   fflush + fsync. Survives OS/power failure, at the
//                      price of a disk round trip.
//
// Group commit lives one layer up: storage/wal_writer.h batches frames
// from concurrent appenders into a single write + Sync() per batch.
//
// ReadRecords/ReadAll tolerate a truncated or corrupt tail (crash
// mid-append, forged headers): they return every complete, parsable,
// LSN-ordered record and stop at the first damaged one. Opening a log
// whose tail is damaged truncates the file back to the last good frame so
// new appends are never hidden behind unreadable bytes.
//
// Failure hardening: a failed write, flush, or truncation kills the file
// handle; every later Append/Sync on the dead handle returns kCorruption
// instead of touching a poisoned tail (or a null FILE*). Truncate() may
// be retried and revives the handle when the reopen succeeds.

#ifndef ADEPT_STORAGE_WAL_H_
#define ADEPT_STORAGE_WAL_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"

namespace adept {

// How far Sync() pushes buffered records toward stable storage.
enum class SyncMode {
  kNone = 0,   // stdio buffer only; lost on process crash
  kFlush = 1,  // OS page cache; lost on OS crash / power failure
  kFsync = 2,  // stable storage
};

// "none", "flush", or "fsync".
const char* SyncModeToString(SyncMode mode);

// One decoded log record: payload plus its log sequence number.
struct WalRecord {
  uint64_t lsn = 0;
  JsonValue value;
};

// One raw (undecoded) frame: the serialized payload bytes plus their LSN.
// The unit the replication layer ships — raw so a replica appends exactly
// the bytes the primary persisted, without a JSON parse/re-dump round trip.
struct WalFrame {
  uint64_t lsn = 0;
  std::string payload;
};

// What ReadTail() learns about a log: the raw frames above a caller-given
// LSN plus the framing facts a replication catch-up needs to tell "behind
// but resumable" from "the prefix was truncated away by a checkpoint".
struct WalTail {
  // Every complete frame with lsn > the requested after_lsn, in order.
  std::vector<WalFrame> frames;
  // LSN of the first complete frame in the file (0 for an empty/absent
  // log). Frames inside one file are contiguous (the writer never skips a
  // ticket), so first_lsn > after_lsn + 1 means the gap (after_lsn,
  // first_lsn) was checkpoint-truncated and the caller must fall back to a
  // snapshot transfer.
  uint64_t first_lsn = 0;
  // LSN of the last complete frame in the file (0 when empty/absent).
  uint64_t last_lsn = 0;
  // False when no file existed at the path.
  bool exists = false;
};

// Everything one full parse pass over a log file learns. Produced by
// Scan(); consumers that need both the records (replay) and the framing
// facts (resuming appends, tail repair) hand the same WalScan to
// OpenScanned() so the file is parsed exactly once per recovery.
struct WalScan {
  std::vector<WalRecord> records;
  // Offset one past the last complete frame; bytes beyond it are a
  // damaged (crash-truncated or corrupt) tail.
  size_t valid_bytes = 0;
  // Total bytes read from the file.
  size_t total_bytes = 0;
  // LSN of the last complete frame (0 for an empty/absent log).
  uint64_t last_lsn = 0;
  // False when no file existed at the path.
  bool exists = false;
};

class WriteAheadLog {
 public:
  // Opens (creating or appending) the log at `path`. Scans any existing
  // frames to resume LSN numbering and truncates a damaged tail back to
  // the last complete frame.
  static Result<std::unique_ptr<WriteAheadLog>> Open(const std::string& path);

  // Parses every complete frame of the log at `path` in one pass. A
  // missing file yields an empty scan (exists == false); a damaged tail
  // ends the scan without error (valid_bytes < total_bytes).
  static Result<WalScan> Scan(const std::string& path);

  // Open() without re-reading the file: trusts `scan` (from Scan() on the
  // same, since-unmodified path) for LSN resumption and tail repair.
  // Recovery replays scan.records and then opens the log through this —
  // one parse pass instead of two.
  static Result<std::unique_ptr<WriteAheadLog>> OpenScanned(
      const std::string& path, const WalScan& scan);

  // Number of full parse passes performed by this process (Scan() calls,
  // including those made by Open/ReadRecords/ReadAll). Regression
  // instrumentation for the single-pass recovery contract.
  static uint64_t scan_count();

  ~WriteAheadLog();
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  // Appends one record under the next LSN and returns that LSN. The frame
  // is buffered; call Sync() to make it durable (see SyncMode above).
  Result<uint64_t> Append(const JsonValue& record);

  // Appends a pre-serialized payload under a caller-assigned LSN, which
  // must exceed last_lsn(). Used by WalWriter, whose appenders draw LSN
  // tickets before the background thread performs the write.
  Status AppendFrame(uint64_t lsn, const std::string& payload);

  // Pushes buffered frames toward stable storage per `mode`.
  Status Sync(SyncMode mode);

  // Discards all records (checkpoint compaction after a snapshot). The
  // LSN counter intentionally survives: LSNs are never reused for a path,
  // so a snapshot's recorded coverage stays unambiguous.
  Status Truncate();

  // Atomically renames the log file to `new_path` (replacing any file
  // there); the open handle keeps writing to the same inode, so no frames
  // are lost or reordered across the rename. Used by the checkpoint
  // rewrite-and-swap compaction (WalWriter::Rewrite): build the compact
  // replacement under a temp name, then swap it over the live path.
  Status RenameTo(const std::string& new_path);

  const std::string& path() const { return path_; }
  size_t records_written() const { return records_written_; }
  // Highest LSN ever appended to (or recovered from) this log.
  uint64_t last_lsn() const { return last_lsn_; }
  // True once an I/O failure killed the handle; Append/Sync then return
  // kCorruption until a successful Truncate() revives it.
  bool dead() const { return file_ == nullptr; }

  // Resumable raw read for replication catch-up: every complete frame
  // with an LSN above `after_lsn`, as the exact payload bytes on disk. A
  // damaged tail ends the read without error (same contract as Scan); a
  // missing file yields an empty tail (exists == false). Safe against a
  // concurrent appender: the parse stops at the first incomplete frame,
  // so the caller sees some durable prefix.
  static Result<WalTail> ReadTail(const std::string& path, uint64_t after_lsn);

  // Reads all complete records with their LSNs; a truncated/corrupt tail
  // ends the scan without error. Missing file yields an empty vector.
  static Result<std::vector<WalRecord>> ReadRecords(const std::string& path);

  // Convenience wrapper over ReadRecords that drops the LSNs.
  static Result<std::vector<JsonValue>> ReadAll(const std::string& path);

 private:
  WriteAheadLog(std::string path, std::FILE* file, uint64_t last_lsn)
      : path_(std::move(path)), file_(file), last_lsn_(last_lsn) {}

  std::string path_;
  std::FILE* file_;
  uint64_t last_lsn_ = 0;
  size_t records_written_ = 0;
};

}  // namespace adept

#endif  // ADEPT_STORAGE_WAL_H_
