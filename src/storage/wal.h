// WriteAheadLog: append-only persistence of engine events.
//
// Records are JSON values framed as "<length>:<json>\n". ReadAll tolerates
// a truncated tail (crash mid-append): it returns every complete, parsable
// record and stops at the first damaged one — recovery then resumes from
// consistent state, which the crash-injection tests exercise.

#ifndef ADEPT_STORAGE_WAL_H_
#define ADEPT_STORAGE_WAL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"

namespace adept {

class WriteAheadLog {
 public:
  // Opens (creating or appending) the log at `path`.
  static Result<std::unique_ptr<WriteAheadLog>> Open(const std::string& path);

  ~WriteAheadLog();
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  // Appends one record and flushes it to the OS.
  Status Append(const JsonValue& record);

  // Discards all records (checkpoint compaction after a snapshot).
  Status Truncate();

  const std::string& path() const { return path_; }
  size_t records_written() const { return records_written_; }

  // Reads all complete records; a truncated/corrupt tail ends the scan
  // without error. Missing file yields an empty vector.
  static Result<std::vector<JsonValue>> ReadAll(const std::string& path);

 private:
  WriteAheadLog(std::string path, std::FILE* file)
      : path_(std::move(path)), file_(file) {}

  std::string path_;
  std::FILE* file_;
  size_t records_written_ = 0;
};

}  // namespace adept

#endif  // ADEPT_STORAGE_WAL_H_
