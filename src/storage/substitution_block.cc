#include "storage/substitution_block.h"

#include <algorithm>

namespace adept {

namespace {

bool DataEdgeEq(const DataEdge& a, const DataEdge& b) {
  return a.node == b.node && a.data == b.data && a.mode == b.mode &&
         a.optional == b.optional;
}

JsonValue DataEdgeToJson(const DataEdge& de) {
  JsonValue j = JsonValue::MakeObject();
  j.Set("node", JsonValue(de.node.value()));
  j.Set("data", JsonValue(de.data.value()));
  j.Set("mode", JsonValue(static_cast<int>(de.mode)));
  if (de.optional) j.Set("optional", JsonValue(true));
  return j;
}

DataEdge DataEdgeFromJson(const JsonValue& j) {
  DataEdge de;
  de.node = NodeId(static_cast<uint32_t>(j.Get("node").as_int()));
  de.data = DataId(static_cast<uint32_t>(j.Get("data").as_int()));
  de.mode = static_cast<AccessMode>(j.Get("mode").as_int());
  de.optional = j.Get("optional").is_bool() && j.Get("optional").as_bool();
  return de;
}

}  // namespace

size_t SubstitutionBlock::MemoryFootprint() const {
  size_t bytes = sizeof(*this);
  for (const auto& [_, n] : nodes) {
    bytes += 48 + sizeof(Node) + n.name.capacity() +
             n.activity_template.capacity();
  }
  bytes += edges.size() * (48 + sizeof(Edge));
  for (const auto& [_, d] : data) {
    bytes += 48 + sizeof(DataElement) + d.name.capacity();
  }
  bytes += added_data_edges.capacity() * sizeof(DataEdge);
  bytes += removed_nodes.size() * 24;
  bytes += removed_edges.size() * 24;
  bytes += removed_data.size() * 24;
  bytes += removed_data_edges.capacity() * sizeof(DataEdge);
  return bytes;
}

SubstitutionBlock ComputeSubstitutionBlock(const ProcessSchema& base,
                                           const ProcessSchema& biased) {
  SubstitutionBlock block;
  block.next_node_id = biased.next_node_id();
  block.next_edge_id = biased.next_edge_id();
  block.next_data_id = biased.next_data_id();
  block.version = biased.version();

  biased.VisitNodes([&](const Node& n) {
    const Node* b = base.FindNode(n.id);
    if (b == nullptr || !(*b == n)) block.nodes.emplace(n.id, n);
  });
  base.VisitNodes([&](const Node& n) {
    if (biased.FindNode(n.id) == nullptr) block.removed_nodes.insert(n.id);
  });

  biased.VisitEdges([&](const Edge& e) {
    const Edge* b = base.FindEdge(e.id);
    if (b == nullptr || !(*b == e)) block.edges.emplace(e.id, e);
  });
  base.VisitEdges([&](const Edge& e) {
    if (biased.FindEdge(e.id) == nullptr) block.removed_edges.insert(e.id);
  });

  biased.VisitData([&](const DataElement& d) {
    const DataElement* b = base.FindData(d.id);
    if (b == nullptr || !(*b == d)) block.data.emplace(d.id, d);
  });
  base.VisitData([&](const DataElement& d) {
    if (biased.FindData(d.id) == nullptr) block.removed_data.insert(d.id);
  });

  for (const DataEdge& de : biased.data_edges()) {
    bool in_base =
        std::any_of(base.data_edges().begin(), base.data_edges().end(),
                    [&](const DataEdge& b) { return DataEdgeEq(b, de); });
    if (!in_base) block.added_data_edges.push_back(de);
  }
  for (const DataEdge& de : base.data_edges()) {
    bool in_biased =
        std::any_of(biased.data_edges().begin(), biased.data_edges().end(),
                    [&](const DataEdge& b) { return DataEdgeEq(b, de); });
    if (!in_biased) block.removed_data_edges.push_back(de);
  }
  return block;
}

JsonValue SubstitutionBlock::ToJson() const {
  JsonValue j = JsonValue::MakeObject();
  j.Set("version", JsonValue(version));
  j.Set("next_node_id", JsonValue(next_node_id));
  j.Set("next_edge_id", JsonValue(next_edge_id));
  j.Set("next_data_id", JsonValue(next_data_id));

  JsonValue nodes_json = JsonValue::MakeArray();
  std::vector<NodeId> node_ids;
  for (const auto& [id, _] : nodes) node_ids.push_back(id);
  std::sort(node_ids.begin(), node_ids.end());
  for (NodeId id : node_ids) {
    const Node& n = nodes.at(id);
    JsonValue nj = JsonValue::MakeObject();
    nj.Set("id", JsonValue(n.id.value()));
    nj.Set("type", JsonValue(static_cast<int>(n.type)));
    nj.Set("name", JsonValue(n.name));
    if (!n.activity_template.empty()) {
      nj.Set("tmpl", JsonValue(n.activity_template));
    }
    if (n.role.valid()) nj.Set("role", JsonValue(n.role.value()));
    if (n.server.valid()) nj.Set("server", JsonValue(n.server.value()));
    if (n.decision_data.valid()) {
      nj.Set("decision", JsonValue(n.decision_data.value()));
    }
    if (n.loop_data.valid()) {
      nj.Set("loop_data", JsonValue(n.loop_data.value()));
    }
    nodes_json.Append(std::move(nj));
  }
  j.Set("nodes", std::move(nodes_json));

  JsonValue edges_json = JsonValue::MakeArray();
  std::vector<EdgeId> edge_ids;
  for (const auto& [id, _] : edges) edge_ids.push_back(id);
  std::sort(edge_ids.begin(), edge_ids.end());
  for (EdgeId id : edge_ids) {
    const Edge& e = edges.at(id);
    JsonValue ej = JsonValue::MakeObject();
    ej.Set("id", JsonValue(e.id.value()));
    ej.Set("src", JsonValue(e.src.value()));
    ej.Set("dst", JsonValue(e.dst.value()));
    ej.Set("type", JsonValue(static_cast<int>(e.type)));
    if (e.branch_value != 0) ej.Set("branch", JsonValue(e.branch_value));
    edges_json.Append(std::move(ej));
  }
  j.Set("edges", std::move(edges_json));

  JsonValue data_json = JsonValue::MakeArray();
  std::vector<DataId> data_ids;
  for (const auto& [id, _] : data) data_ids.push_back(id);
  std::sort(data_ids.begin(), data_ids.end());
  for (DataId id : data_ids) {
    const DataElement& d = data.at(id);
    JsonValue dj = JsonValue::MakeObject();
    dj.Set("id", JsonValue(d.id.value()));
    dj.Set("name", JsonValue(d.name));
    dj.Set("type", JsonValue(static_cast<int>(d.type)));
    data_json.Append(std::move(dj));
  }
  j.Set("data", std::move(data_json));

  auto id_array = [](const auto& set) {
    std::vector<uint32_t> ids;
    for (const auto& id : set) ids.push_back(id.value());
    std::sort(ids.begin(), ids.end());
    JsonValue arr = JsonValue::MakeArray();
    for (uint32_t v : ids) arr.Append(JsonValue(v));
    return arr;
  };
  j.Set("removed_nodes", id_array(removed_nodes));
  j.Set("removed_edges", id_array(removed_edges));
  j.Set("removed_data", id_array(removed_data));

  JsonValue added_de = JsonValue::MakeArray();
  for (const DataEdge& de : added_data_edges) {
    added_de.Append(DataEdgeToJson(de));
  }
  j.Set("added_data_edges", std::move(added_de));
  JsonValue removed_de = JsonValue::MakeArray();
  for (const DataEdge& de : removed_data_edges) {
    removed_de.Append(DataEdgeToJson(de));
  }
  j.Set("removed_data_edges", std::move(removed_de));
  return j;
}

Result<SubstitutionBlock> SubstitutionBlock::FromJson(const JsonValue& json) {
  if (!json.is_object()) {
    return Status::Corruption("substitution block json malformed");
  }
  SubstitutionBlock block;
  block.version = static_cast<int>(json.Get("version").as_int());
  block.next_node_id = static_cast<uint32_t>(json.Get("next_node_id").as_int());
  block.next_edge_id = static_cast<uint32_t>(json.Get("next_edge_id").as_int());
  block.next_data_id = static_cast<uint32_t>(json.Get("next_data_id").as_int());

  for (const JsonValue& nj : json.Get("nodes").as_array()) {
    Node n;
    n.id = NodeId(static_cast<uint32_t>(nj.Get("id").as_int()));
    n.type = static_cast<NodeType>(nj.Get("type").as_int());
    n.name = nj.Get("name").as_string();
    n.activity_template = nj.Get("tmpl").as_string();
    if (nj.Has("role")) {
      n.role = RoleId(static_cast<uint32_t>(nj.Get("role").as_int()));
    }
    if (nj.Has("server")) {
      n.server = ServerId(static_cast<uint32_t>(nj.Get("server").as_int()));
    }
    if (nj.Has("decision")) {
      n.decision_data =
          DataId(static_cast<uint32_t>(nj.Get("decision").as_int()));
    }
    if (nj.Has("loop_data")) {
      n.loop_data = DataId(static_cast<uint32_t>(nj.Get("loop_data").as_int()));
    }
    block.nodes.emplace(n.id, std::move(n));
  }
  for (const JsonValue& ej : json.Get("edges").as_array()) {
    Edge e;
    e.id = EdgeId(static_cast<uint32_t>(ej.Get("id").as_int()));
    e.src = NodeId(static_cast<uint32_t>(ej.Get("src").as_int()));
    e.dst = NodeId(static_cast<uint32_t>(ej.Get("dst").as_int()));
    e.type = static_cast<EdgeType>(ej.Get("type").as_int());
    e.branch_value = static_cast<int>(ej.Get("branch").as_int());
    block.edges.emplace(e.id, e);
  }
  for (const JsonValue& dj : json.Get("data").as_array()) {
    DataElement d;
    d.id = DataId(static_cast<uint32_t>(dj.Get("id").as_int()));
    d.name = dj.Get("name").as_string();
    d.type = static_cast<DataType>(dj.Get("type").as_int());
    block.data.emplace(d.id, std::move(d));
  }
  for (const JsonValue& v : json.Get("removed_nodes").as_array()) {
    block.removed_nodes.insert(NodeId(static_cast<uint32_t>(v.as_int())));
  }
  for (const JsonValue& v : json.Get("removed_edges").as_array()) {
    block.removed_edges.insert(EdgeId(static_cast<uint32_t>(v.as_int())));
  }
  for (const JsonValue& v : json.Get("removed_data").as_array()) {
    block.removed_data.insert(DataId(static_cast<uint32_t>(v.as_int())));
  }
  for (const JsonValue& v : json.Get("added_data_edges").as_array()) {
    block.added_data_edges.push_back(DataEdgeFromJson(v));
  }
  for (const JsonValue& v : json.Get("removed_data_edges").as_array()) {
    block.removed_data_edges.push_back(DataEdgeFromJson(v));
  }
  return block;
}

}  // namespace adept
