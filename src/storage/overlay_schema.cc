#include "storage/overlay_schema.h"

#include <algorithm>

namespace adept {

OverlaySchema::OverlaySchema(std::shared_ptr<const ProcessSchema> base,
                             std::shared_ptr<const SubstitutionBlock> block)
    : base_(std::move(base)), block_(std::move(block)) {
  VisitNodes([&](const Node&) { ++node_count_; });
  VisitEdges([&](const Edge&) { ++edge_count_; });
  VisitData([&](const DataElement&) { ++data_count_; });
}

const Node* OverlaySchema::FindNode(NodeId id) const {
  auto it = block_->nodes.find(id);
  if (it != block_->nodes.end()) return &it->second;
  if (block_->removed_nodes.count(id) > 0) return nullptr;
  return base_->FindNode(id);
}

const Edge* OverlaySchema::FindEdge(EdgeId id) const {
  auto it = block_->edges.find(id);
  if (it != block_->edges.end()) {
    return EdgeVisible(it->second) ? &it->second : nullptr;
  }
  if (block_->removed_edges.count(id) > 0) return nullptr;
  const Edge* e = base_->FindEdge(id);
  if (e == nullptr || !EdgeVisible(*e)) return nullptr;
  return e;
}

const DataElement* OverlaySchema::FindData(DataId id) const {
  auto it = block_->data.find(id);
  if (it != block_->data.end()) return &it->second;
  if (block_->removed_data.count(id) > 0) return nullptr;
  return base_->FindData(id);
}

bool OverlaySchema::EdgeVisible(const Edge& e) const {
  return FindNode(e.src) != nullptr && FindNode(e.dst) != nullptr;
}

void OverlaySchema::VisitNodes(
    const std::function<void(const Node&)>& fn) const {
  // Base ids first (replacements emitted in place), then bias-added nodes.
  // Added ids are always greater than base ids (see id_allocator.h), so the
  // combined order stays ascending.
  base_->VisitNodes([&](const Node& n) {
    if (block_->removed_nodes.count(n.id) > 0) return;
    auto it = block_->nodes.find(n.id);
    fn(it != block_->nodes.end() ? it->second : n);
  });
  std::vector<NodeId> added;
  for (const auto& [id, _] : block_->nodes) {
    if (base_->FindNode(id) == nullptr) added.push_back(id);
  }
  std::sort(added.begin(), added.end());
  for (NodeId id : added) fn(block_->nodes.at(id));
}

void OverlaySchema::VisitEdges(
    const std::function<void(const Edge&)>& fn) const {
  base_->VisitEdges([&](const Edge& e) {
    if (block_->removed_edges.count(e.id) > 0) return;
    auto it = block_->edges.find(e.id);
    const Edge& effective = it != block_->edges.end() ? it->second : e;
    if (EdgeVisible(effective)) fn(effective);
  });
  std::vector<EdgeId> added;
  for (const auto& [id, _] : block_->edges) {
    if (base_->FindEdge(id) == nullptr) added.push_back(id);
  }
  std::sort(added.begin(), added.end());
  for (EdgeId id : added) {
    const Edge& e = block_->edges.at(id);
    if (EdgeVisible(e)) fn(e);
  }
}

void OverlaySchema::VisitData(
    const std::function<void(const DataElement&)>& fn) const {
  base_->VisitData([&](const DataElement& d) {
    if (block_->removed_data.count(d.id) > 0) return;
    auto it = block_->data.find(d.id);
    fn(it != block_->data.end() ? it->second : d);
  });
  std::vector<DataId> added;
  for (const auto& [id, _] : block_->data) {
    if (base_->FindData(id) == nullptr) added.push_back(id);
  }
  std::sort(added.begin(), added.end());
  for (DataId id : added) fn(block_->data.at(id));
}

void OverlaySchema::VisitOutEdges(
    NodeId node, const std::function<void(const Edge&)>& fn) const {
  if (block_->edges.empty() && block_->removed_edges.empty() &&
      block_->removed_nodes.empty()) {
    base_->VisitOutEdges(node, fn);
    return;
  }
  std::vector<const Edge*> out;
  base_->VisitOutEdges(node, [&](const Edge& e) {
    if (block_->removed_edges.count(e.id) > 0) return;
    auto it = block_->edges.find(e.id);
    const Edge& effective = it != block_->edges.end() ? it->second : e;
    if (effective.src == node && EdgeVisible(effective)) {
      out.push_back(&effective);
    }
  });
  for (const auto& [id, e] : block_->edges) {
    if (e.src != node || !EdgeVisible(e)) continue;
    // Replacements whose base src was already `node` were handled above.
    const Edge* base_edge = base_->FindEdge(id);
    if (base_edge != nullptr && base_edge->src == node) continue;
    out.push_back(&e);
  }
  std::sort(out.begin(), out.end(),
            [](const Edge* a, const Edge* b) { return a->id < b->id; });
  for (const Edge* e : out) fn(*e);
}

void OverlaySchema::VisitInEdges(
    NodeId node, const std::function<void(const Edge&)>& fn) const {
  if (block_->edges.empty() && block_->removed_edges.empty() &&
      block_->removed_nodes.empty()) {
    base_->VisitInEdges(node, fn);
    return;
  }
  std::vector<const Edge*> in;
  base_->VisitInEdges(node, [&](const Edge& e) {
    if (block_->removed_edges.count(e.id) > 0) return;
    auto it = block_->edges.find(e.id);
    const Edge& effective = it != block_->edges.end() ? it->second : e;
    if (effective.dst == node && EdgeVisible(effective)) {
      in.push_back(&effective);
    }
  });
  for (const auto& [id, e] : block_->edges) {
    if (e.dst != node || !EdgeVisible(e)) continue;
    const Edge* base_edge = base_->FindEdge(id);
    if (base_edge != nullptr && base_edge->dst == node) continue;
    in.push_back(&e);
  }
  std::sort(in.begin(), in.end(),
            [](const Edge* a, const Edge* b) { return a->id < b->id; });
  for (const Edge* e : in) fn(*e);
}

void OverlaySchema::VisitDataEdges(
    NodeId node, const std::function<void(const DataEdge&)>& fn) const {
  auto removed = [&](const DataEdge& de) {
    return std::any_of(block_->removed_data_edges.begin(),
                       block_->removed_data_edges.end(),
                       [&](const DataEdge& r) {
                         return r.node == de.node && r.data == de.data &&
                                r.mode == de.mode;
                       });
  };
  if (FindNode(node) == nullptr) return;
  base_->VisitDataEdges(node, [&](const DataEdge& de) {
    if (!removed(de) && FindData(de.data) != nullptr) fn(de);
  });
  for (const DataEdge& de : block_->added_data_edges) {
    if (de.node == node && FindData(de.data) != nullptr) fn(de);
  }
}

Result<std::shared_ptr<ProcessSchema>> OverlaySchema::Materialize() const {
  auto schema = std::make_shared<ProcessSchema>(type_name(), version());
  Status st = Status::OK();
  VisitNodes([&](const Node& n) {
    if (st.ok()) st = schema->AddNodeWithId(n);
  });
  VisitEdges([&](const Edge& e) {
    if (st.ok()) st = schema->AddEdgeWithId(e);
  });
  VisitData([&](const DataElement& d) {
    if (st.ok()) st = schema->AddDataWithId(d);
  });
  VisitNodes([&](const Node& n) {
    VisitDataEdges(n.id, [&](const DataEdge& de) {
      if (st.ok()) {
        st = schema->AddDataEdge(de.node, de.data, de.mode, de.optional);
      }
    });
  });
  ADEPT_RETURN_IF_ERROR(st);
  schema->BumpCounters(block_->next_node_id, block_->next_edge_id,
                       block_->next_data_id);
  ADEPT_RETURN_IF_ERROR(schema->Freeze());
  return schema;
}

}  // namespace adept
