#include "storage/schema_repository.h"

#include "common/logging.h"
#include "common/string_util.h"
#include "model/serialization.h"
#include "verify/verifier.h"

namespace adept {

namespace {

void LogWarnings(const char* action, const std::string& type_name,
                 int version, const VerificationReport& report) {
  if (report.warning_count() == 0) return;
  for (const auto& issue : report.issues()) {
    if (issue.severity != VerifySeverity::kWarning) continue;
    ADEPT_LOG(kWarning) << action << " " << type_name << " v" << version
                        << ": [" << VerifyRuleId(issue.rule) << "] "
                        << issue.message;
  }
}

}  // namespace

Result<SchemaId> SchemaRepository::Deploy(
    std::shared_ptr<const ProcessSchema> schema) {
  if (schema == nullptr || !schema->frozen()) {
    return Status::InvalidArgument("deploy requires a frozen schema");
  }
  for (const auto& [_, entry] : entries_) {
    if (entry.schema->type_name() == schema->type_name()) {
      return Status::AlreadyExists(
          "process type already deployed; use DeriveVersion");
    }
  }
  AnalysisResult analyzed = AnalyzeSchema(*schema);
  if (!analyzed.report.ok()) {
    return Status::VerificationFailed(analyzed.report.FirstError());
  }
  LogWarnings("deploy", schema->type_name(), schema->version(),
              analyzed.report);
  SchemaId id(next_id_++);
  Entry entry{std::move(schema), SchemaId::Invalid(), Delta(),
              std::move(analyzed.report), std::move(analyzed.analysis)};
  entries_.emplace(id, std::move(entry));
  return id;
}

Result<SchemaId> SchemaRepository::DeriveVersion(SchemaId base, Delta delta) {
  auto it = entries_.find(base);
  if (it == entries_.end()) return Status::NotFound("no such schema version");
  const ProcessSchema& base_schema = *it->second.schema;

  // Only the newest version of a type may be extended, keeping version
  // numbers linear per type (the paper's version chains V1 -> V2 -> ...).
  ADEPT_ASSIGN_OR_RETURN(SchemaId latest, Latest(base_schema.type_name()));
  if (latest != base) {
    return Status::FailedPrecondition(
        "only the latest version of a type can be evolved");
  }

  // Incremental: re-verify only the blocks the delta touched, seeded from
  // the base version's cached analysis.
  Entry* base_entry = EnsureAnalyzed(base);
  ADEPT_ASSIGN_OR_RETURN(
      Delta::VerifiedSchema verified,
      delta.ApplyVerified(base_schema, base_entry->analysis.get()));
  LogWarnings("evolve", verified.schema->type_name(),
              verified.schema->version(), verified.report);
  SchemaId id(next_id_++);
  Entry entry{std::move(verified.schema), base, std::move(delta),
              std::move(verified.report), std::move(verified.analysis)};
  entries_.emplace(id, std::move(entry));
  return id;
}

SchemaRepository::Entry* SchemaRepository::EnsureAnalyzed(SchemaId id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return nullptr;
  Entry& entry = it->second;
  if (entry.analysis == nullptr) {
    AnalysisResult analyzed = AnalyzeSchema(*entry.schema);
    entry.report = std::move(analyzed.report);
    entry.analysis = std::move(analyzed.analysis);
  }
  return &entry;
}

Result<const VerificationReport*> SchemaRepository::ReportFor(SchemaId id) {
  Entry* entry = EnsureAnalyzed(id);
  if (entry == nullptr) return Status::NotFound("no such schema version");
  return &entry->report;
}

Result<std::shared_ptr<const SchemaAnalysis>> SchemaRepository::AnalysisFor(
    SchemaId id) {
  Entry* entry = EnsureAnalyzed(id);
  if (entry == nullptr) return Status::NotFound("no such schema version");
  return entry->analysis;
}

std::vector<SchemaId> SchemaRepository::AllIds() const {
  std::vector<SchemaId> out;
  out.reserve(entries_.size());
  for (const auto& [id, _] : entries_) out.push_back(id);
  return out;
}

Result<std::shared_ptr<const ProcessSchema>> SchemaRepository::Get(
    SchemaId id) const {
  auto it = entries_.find(id);
  if (it == entries_.end()) return Status::NotFound("no such schema version");
  return it->second.schema;
}

Result<SchemaId> SchemaRepository::Latest(const std::string& type_name) const {
  SchemaId best;
  int best_version = -1;
  for (const auto& [id, entry] : entries_) {
    if (entry.schema->type_name() == type_name &&
        entry.schema->version() > best_version) {
      best = id;
      best_version = entry.schema->version();
    }
  }
  if (!best.valid()) return Status::NotFound("unknown process type");
  return best;
}

std::vector<SchemaId> SchemaRepository::VersionsOf(
    const std::string& type_name) const {
  std::vector<std::pair<int, SchemaId>> found;
  for (const auto& [id, entry] : entries_) {
    if (entry.schema->type_name() == type_name) {
      found.emplace_back(entry.schema->version(), id);
    }
  }
  std::sort(found.begin(), found.end());
  std::vector<SchemaId> out;
  out.reserve(found.size());
  for (const auto& [_, id] : found) out.push_back(id);
  return out;
}

Result<SchemaId> SchemaRepository::ParentOf(SchemaId id) const {
  auto it = entries_.find(id);
  if (it == entries_.end()) return Status::NotFound("no such schema version");
  return it->second.parent;
}

Result<const Delta*> SchemaRepository::DeltaFor(SchemaId id) const {
  auto it = entries_.find(id);
  if (it == entries_.end()) return Status::NotFound("no such schema version");
  if (!it->second.parent.valid()) {
    return Status::FailedPrecondition("version was deployed, not derived");
  }
  return &it->second.delta_from_parent;
}

size_t SchemaRepository::MemoryFootprint() const {
  size_t bytes = sizeof(*this);
  for (const auto& [_, entry] : entries_) {
    bytes += entry.schema->MemoryFootprint() + 64;
  }
  return bytes;
}

JsonValue SchemaRepository::ToJson() const {
  JsonValue arr = JsonValue::MakeArray();
  for (const auto& [id, entry] : entries_) {
    JsonValue ej = JsonValue::MakeObject();
    ej.Set("id", JsonValue(id.value()));
    ej.Set("schema", SchemaToJson(*entry.schema));
    if (entry.parent.valid()) {
      ej.Set("parent", JsonValue(entry.parent.value()));
      ej.Set("delta", entry.delta_from_parent.ToJson());
    }
    arr.Append(std::move(ej));
  }
  JsonValue j = JsonValue::MakeObject();
  j.Set("next_id", JsonValue(next_id_));
  j.Set("entries", std::move(arr));
  return j;
}

Status SchemaRepository::LoadFromJson(const JsonValue& json) {
  if (!entries_.empty()) {
    return Status::FailedPrecondition("repository is not empty");
  }
  if (!json.is_object()) return Status::Corruption("repository json malformed");
  for (const JsonValue& ej : json.Get("entries").as_array()) {
    SchemaId id(static_cast<uint64_t>(ej.Get("id").as_int()));
    ADEPT_ASSIGN_OR_RETURN(std::shared_ptr<ProcessSchema> schema,
                           SchemaFromJson(ej.Get("schema")));
    Entry entry;
    entry.schema = std::move(schema);
    if (ej.Has("parent")) {
      entry.parent = SchemaId(static_cast<uint64_t>(ej.Get("parent").as_int()));
      ADEPT_ASSIGN_OR_RETURN(entry.delta_from_parent,
                             Delta::FromJson(ej.Get("delta")));
    }
    entries_.emplace(id, std::move(entry));
    next_id_ = std::max(next_id_, id.value() + 1);
  }
  next_id_ = std::max(next_id_,
                      static_cast<uint64_t>(json.Get("next_id").as_int()));
  return Status::OK();
}

}  // namespace adept
