// SubstitutionBlock: the minimal difference between a base schema and a
// biased instance's execution schema (paper Fig. 2).
//
// "For each biased instance we maintain a minimal substitution block that
// captures all changes applied to it so far. This block is then used to
// overlay parts of the original schema when accessing the instance."
//
// The block is computed as a structural diff (added/replaced and removed
// entities), which by construction guarantees
//     overlay(base, block) == apply(bias delta, base)
// — a property the test suite checks for randomized deltas.

#ifndef ADEPT_STORAGE_SUBSTITUTION_BLOCK_H_
#define ADEPT_STORAGE_SUBSTITUTION_BLOCK_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "model/node.h"
#include "model/schema.h"

namespace adept {

struct SubstitutionBlock {
  // Entities present in the biased schema but absent from (or differing
  // from) the base. Keyed by id for O(1) overlay resolution.
  std::unordered_map<NodeId, Node> nodes;
  std::unordered_map<EdgeId, Edge> edges;
  std::unordered_map<DataId, DataElement> data;
  std::vector<DataEdge> added_data_edges;

  // Base entities hidden by the bias.
  std::unordered_set<NodeId> removed_nodes;
  std::unordered_set<EdgeId> removed_edges;
  std::unordered_set<DataId> removed_data;
  std::vector<DataEdge> removed_data_edges;

  // Id counters of the biased schema (for faithful materialization).
  uint32_t next_node_id = 0;
  uint32_t next_edge_id = 0;
  uint32_t next_data_id = 0;
  int version = 0;

  bool empty() const {
    return nodes.empty() && edges.empty() && data.empty() &&
           added_data_edges.empty() && removed_nodes.empty() &&
           removed_edges.empty() && removed_data.empty() &&
           removed_data_edges.empty();
  }

  size_t MemoryFootprint() const;

  JsonValue ToJson() const;
  static Result<SubstitutionBlock> FromJson(const JsonValue& json);
};

// Diffs `biased` against `base`.
SubstitutionBlock ComputeSubstitutionBlock(const ProcessSchema& base,
                                           const ProcessSchema& biased);

}  // namespace adept

#endif  // ADEPT_STORAGE_SUBSTITUTION_BLOCK_H_
