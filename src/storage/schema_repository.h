// SchemaRepository: versioned storage of process type schemas.
//
// Every process type forms a version chain: V1 is deployed, later versions
// are derived by applying a Delta (the type change) to a predecessor. The
// repository keeps, per version, the frozen schema, its parent, and the
// delta from the parent — the migration manager asks for exactly that delta
// when propagating a type change to running instances.

#ifndef ADEPT_STORAGE_SCHEMA_REPOSITORY_H_
#define ADEPT_STORAGE_SCHEMA_REPOSITORY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "change/delta.h"
#include "common/ids.h"
#include "common/status.h"
#include "model/schema.h"
#include "verify/analysis.h"

namespace adept {

class SchemaRepository {
 public:
  SchemaRepository() = default;
  SchemaRepository(const SchemaRepository&) = delete;
  SchemaRepository& operator=(const SchemaRepository&) = delete;

  // Deploys a verified schema as the first version of its type.
  // Rejects unverified schemas and duplicate type names.
  Result<SchemaId> Deploy(std::shared_ptr<const ProcessSchema> schema);

  // Applies `delta` to version `base`, verifies the result, and stores it
  // as the next version of the type. The delta is retained.
  Result<SchemaId> DeriveVersion(SchemaId base, Delta delta);

  Result<std::shared_ptr<const ProcessSchema>> Get(SchemaId id) const;

  // Latest (highest) version of a type.
  Result<SchemaId> Latest(const std::string& type_name) const;

  // All versions of a type in ascending version order.
  std::vector<SchemaId> VersionsOf(const std::string& type_name) const;

  // Parent version (invalid id for deployed roots).
  Result<SchemaId> ParentOf(SchemaId id) const;

  // The delta that derived `id` from its parent.
  Result<const Delta*> DeltaFor(SchemaId id) const;

  // Full verification report of a stored version, warnings included
  // (Deploy/DeriveVersion reject versions with errors, so stored reports
  // only ever carry warnings). Analyzes lazily for versions loaded from
  // JSON.
  Result<const VerificationReport*> ReportFor(SchemaId id);

  // Cached block-summary analysis of a stored version; seed for
  // incremental re-verification of deltas on top of it (bias application,
  // migration probes, DeriveVersion).
  Result<std::shared_ptr<const SchemaAnalysis>> AnalysisFor(SchemaId id);

  // All stored versions in id order (adept_lint batch enumeration).
  std::vector<SchemaId> AllIds() const;

  size_t size() const { return entries_.size(); }

  // Total heap footprint of all stored schemas (Fig. 2 accounting).
  size_t MemoryFootprint() const;

  JsonValue ToJson() const;
  Status LoadFromJson(const JsonValue& json);  // into an empty repository

 private:
  struct Entry {
    std::shared_ptr<const ProcessSchema> schema;
    SchemaId parent;
    Delta delta_from_parent;
    // Verification artifacts; analysis == nullptr until EnsureAnalyzed
    // (versions loaded from JSON are analyzed on first use).
    VerificationReport report;
    std::shared_ptr<const SchemaAnalysis> analysis;
  };

  Entry* EnsureAnalyzed(SchemaId id);

  std::map<SchemaId, Entry> entries_;
  uint64_t next_id_ = 1;
};

}  // namespace adept

#endif  // ADEPT_STORAGE_SCHEMA_REPOSITORY_H_
