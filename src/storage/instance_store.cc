#include "storage/instance_store.h"

#include "common/string_util.h"

namespace adept {

const char* StorageStrategyToString(StorageStrategy s) {
  switch (s) {
    case StorageStrategy::kOverlay:
      return "overlay";
    case StorageStrategy::kFullCopy:
      return "full-copy";
    case StorageStrategy::kMaterializeOnDemand:
      return "materialize-on-demand";
  }
  return "?";
}

Status InstanceStore::Register(InstanceId id, SchemaId base_schema,
                               StorageStrategy strategy) {
  if (records_.count(id) > 0) {
    return Status::AlreadyExists("instance already registered");
  }
  ADEPT_RETURN_IF_ERROR(repository_->Get(base_schema).status());
  Record record;
  record.id = id;
  record.base_schema = base_schema;
  record.strategy = strategy;
  records_.emplace(id, std::move(record));
  return Status::OK();
}

Status InstanceStore::Unregister(InstanceId id) {
  if (records_.erase(id) == 0) return Status::NotFound("no such instance");
  return Status::OK();
}

Result<const InstanceStore::Record*> InstanceStore::Get(InstanceId id) const {
  auto it = records_.find(id);
  if (it == records_.end()) return Status::NotFound("no such instance");
  return &it->second;
}

bool InstanceStore::IsBiased(InstanceId id) const {
  auto it = records_.find(id);
  return it != records_.end() && it->second.biased();
}

std::vector<InstanceId> InstanceStore::Ids() const {
  std::vector<InstanceId> out;
  out.reserve(records_.size());
  for (const auto& [id, _] : records_) out.push_back(id);
  return out;
}

Status InstanceStore::Refresh(
    Record& record, std::shared_ptr<const ProcessSchema> materialized) {
  ADEPT_ASSIGN_OR_RETURN(std::shared_ptr<const ProcessSchema> base,
                         repository_->Get(record.base_schema));
  switch (record.strategy) {
    case StorageStrategy::kOverlay:
      record.block = std::make_shared<const SubstitutionBlock>(
          ComputeSubstitutionBlock(*base, *materialized));
      record.full_copy = nullptr;
      break;
    case StorageStrategy::kFullCopy:
      record.block = nullptr;
      record.full_copy = std::move(materialized);
      break;
    case StorageStrategy::kMaterializeOnDemand:
      record.block = nullptr;
      record.full_copy = nullptr;
      break;
  }
  return Status::OK();
}

Result<std::shared_ptr<const SchemaView>> InstanceStore::ViewFor(
    const Record& record) const {
  ADEPT_ASSIGN_OR_RETURN(std::shared_ptr<const ProcessSchema> base,
                         repository_->Get(record.base_schema));
  if (!record.biased()) return std::shared_ptr<const SchemaView>(base);
  switch (record.strategy) {
    case StorageStrategy::kOverlay:
      if (record.block == nullptr) {
        return Status::Internal("biased overlay record without block");
      }
      return std::shared_ptr<const SchemaView>(
          std::make_shared<OverlaySchema>(base, record.block));
    case StorageStrategy::kFullCopy:
      if (record.full_copy == nullptr) {
        return Status::Internal("biased full-copy record without schema");
      }
      return std::shared_ptr<const SchemaView>(record.full_copy);
    case StorageStrategy::kMaterializeOnDemand: {
      // Rebuild from the delta on every access.
      Delta bias = record.bias.Clone();
      BiasIdAllocator alloc;
      ADEPT_ASSIGN_OR_RETURN(
          std::shared_ptr<ProcessSchema> fresh,
          bias.ApplyRaw(*base, base->version(), &alloc));
      return std::shared_ptr<const SchemaView>(std::move(fresh));
    }
  }
  return Status::Internal("unknown storage strategy");
}

Result<std::shared_ptr<const SchemaView>> InstanceStore::AddBias(
    InstanceId id, Delta delta) {
  auto it = records_.find(id);
  if (it == records_.end()) return Status::NotFound("no such instance");
  Record& record = it->second;
  ADEPT_ASSIGN_OR_RETURN(std::shared_ptr<const ProcessSchema> base,
                         repository_->Get(record.base_schema));

  // Combined bias = existing ops (pinned) + new ops (fresh bias-range ids).
  Delta combined = record.bias.Clone();
  for (const auto& op : delta.ops()) combined.Add(op->Clone());
  BiasIdAllocator alloc;
  ADEPT_ASSIGN_OR_RETURN(
      std::shared_ptr<ProcessSchema> materialized,
      combined.ApplyToSchema(*base, base->version(), &alloc));

  record.bias = std::move(combined);
  ADEPT_RETURN_IF_ERROR(Refresh(record, std::move(materialized)));
  return ViewFor(record);
}

Result<std::shared_ptr<const SchemaView>> InstanceStore::Rebase(
    InstanceId id, SchemaId new_base) {
  auto it = records_.find(id);
  if (it == records_.end()) return Status::NotFound("no such instance");
  Record& record = it->second;
  ADEPT_ASSIGN_OR_RETURN(std::shared_ptr<const ProcessSchema> base,
                         repository_->Get(new_base));
  if (!record.biased()) {
    record.base_schema = new_base;
    return ViewFor(record);
  }
  BiasIdAllocator alloc;
  ADEPT_ASSIGN_OR_RETURN(
      std::shared_ptr<ProcessSchema> materialized,
      record.bias.ApplyToSchema(*base, base->version(), &alloc));
  record.base_schema = new_base;
  ADEPT_RETURN_IF_ERROR(Refresh(record, std::move(materialized)));
  return ViewFor(record);
}

Result<std::shared_ptr<const SchemaView>> InstanceStore::ClearBias(
    InstanceId id, SchemaId new_base) {
  auto it = records_.find(id);
  if (it == records_.end()) return Status::NotFound("no such instance");
  Record& record = it->second;
  ADEPT_RETURN_IF_ERROR(repository_->Get(new_base).status());
  record.bias = Delta();
  record.block = nullptr;
  record.full_copy = nullptr;
  record.base_schema = new_base;
  return ViewFor(record);
}

Result<std::shared_ptr<const SchemaView>> InstanceStore::ExecutionSchema(
    InstanceId id) const {
  auto it = records_.find(id);
  if (it == records_.end()) return Status::NotFound("no such instance");
  return ViewFor(it->second);
}

InstanceStore::MemoryStats InstanceStore::Memory() const {
  MemoryStats stats;
  stats.shared_schemas = repository_->MemoryFootprint();
  for (const auto& [_, record] : records_) {
    stats.records += sizeof(Record);
    for (const auto& op : record.bias.ops()) {
      stats.records += op->ToJson().Dump().size();  // serialized op size
    }
    if (record.block != nullptr) {
      stats.blocks += record.block->MemoryFootprint();
    }
    if (record.full_copy != nullptr) {
      stats.full_copies += record.full_copy->MemoryFootprint();
    }
  }
  return stats;
}

}  // namespace adept
