#include "storage/instance_store.h"

#include "common/string_util.h"

namespace adept {

const char* StorageStrategyToString(StorageStrategy s) {
  switch (s) {
    case StorageStrategy::kOverlay:
      return "overlay";
    case StorageStrategy::kFullCopy:
      return "full-copy";
    case StorageStrategy::kMaterializeOnDemand:
      return "materialize-on-demand";
  }
  return "?";
}

Status InstanceStore::Register(InstanceId id, SchemaId base_schema,
                               StorageStrategy strategy) {
  if (records_.count(id) > 0) {
    return Status::AlreadyExists("instance already registered");
  }
  ADEPT_RETURN_IF_ERROR(repository_->Get(base_schema).status());
  Record record;
  record.id = id;
  record.base_schema = base_schema;
  record.strategy = strategy;
  records_.emplace(id, std::move(record));
  return Status::OK();
}

Status InstanceStore::Unregister(InstanceId id) {
  if (records_.erase(id) == 0) return Status::NotFound("no such instance");
  return Status::OK();
}

Result<const InstanceStore::Record*> InstanceStore::Get(InstanceId id) const {
  auto it = records_.find(id);
  if (it == records_.end()) return Status::NotFound("no such instance");
  return &it->second;
}

bool InstanceStore::IsBiased(InstanceId id) const {
  auto it = records_.find(id);
  return it != records_.end() && it->second.biased();
}

std::vector<InstanceId> InstanceStore::Ids() const {
  std::vector<InstanceId> out;
  out.reserve(records_.size());
  for (const auto& [id, _] : records_) out.push_back(id);
  return out;
}

Status InstanceStore::Refresh(
    Record& record, std::shared_ptr<const ProcessSchema> materialized) {
  ADEPT_ASSIGN_OR_RETURN(std::shared_ptr<const ProcessSchema> base,
                         repository_->Get(record.base_schema));
  switch (record.strategy) {
    case StorageStrategy::kOverlay:
      record.block = std::make_shared<const SubstitutionBlock>(
          ComputeSubstitutionBlock(*base, *materialized));
      record.full_copy = nullptr;
      break;
    case StorageStrategy::kFullCopy:
      record.block = nullptr;
      record.full_copy = std::move(materialized);
      break;
    case StorageStrategy::kMaterializeOnDemand:
      record.block = nullptr;
      record.full_copy = nullptr;
      break;
  }
  return Status::OK();
}

Result<std::shared_ptr<const SchemaView>> InstanceStore::ViewFor(
    const Record& record) const {
  ADEPT_ASSIGN_OR_RETURN(std::shared_ptr<const ProcessSchema> base,
                         repository_->Get(record.base_schema));
  if (!record.biased()) return std::shared_ptr<const SchemaView>(base);
  switch (record.strategy) {
    case StorageStrategy::kOverlay:
      if (record.block == nullptr) {
        return Status::Internal("biased overlay record without block");
      }
      return std::shared_ptr<const SchemaView>(
          std::make_shared<OverlaySchema>(base, record.block));
    case StorageStrategy::kFullCopy:
      if (record.full_copy == nullptr) {
        return Status::Internal("biased full-copy record without schema");
      }
      return std::shared_ptr<const SchemaView>(record.full_copy);
    case StorageStrategy::kMaterializeOnDemand: {
      // Rebuild from the delta on every access.
      Delta bias = record.bias.Clone();
      BiasIdAllocator alloc;
      ADEPT_ASSIGN_OR_RETURN(
          std::shared_ptr<ProcessSchema> fresh,
          bias.ApplyRaw(*base, base->version(), &alloc));
      return std::shared_ptr<const SchemaView>(std::move(fresh));
    }
  }
  return Status::Internal("unknown storage strategy");
}

Result<std::shared_ptr<const SchemaView>> InstanceStore::AddBias(
    InstanceId id, Delta delta) {
  auto it = records_.find(id);
  if (it == records_.end()) return Status::NotFound("no such instance");
  Record& record = it->second;
  ADEPT_ASSIGN_OR_RETURN(std::shared_ptr<const ProcessSchema> base,
                         repository_->Get(record.base_schema));

  // Combined bias = existing ops (pinned) + new ops (fresh bias-range ids).
  // The existing ops are a replay prefix reconstructing the schema the
  // record's cached analysis describes, so incremental verification only
  // re-checks the blocks the *new* ops touch.
  const size_t replay_ops = record.bias.size();
  const SchemaAnalysis* seed = record.analysis.get();
  std::shared_ptr<const SchemaAnalysis> base_analysis;
  if (seed == nullptr) {
    // First bias: seed from the shared type schema's cached analysis.
    ADEPT_ASSIGN_OR_RETURN(base_analysis,
                           repository_->AnalysisFor(record.base_schema));
    seed = base_analysis.get();
  }
  Delta combined = record.bias.Clone();
  for (const auto& op : delta.ops()) combined.Add(op->Clone());
  BiasIdAllocator alloc;
  ADEPT_ASSIGN_OR_RETURN(
      Delta::VerifiedSchema verified,
      combined.ApplyVerified(*base, seed, base->version(), &alloc,
                             replay_ops));

  record.bias = std::move(combined);
  record.report = std::move(verified.report);
  record.analysis = std::move(verified.analysis);
  ADEPT_RETURN_IF_ERROR(Refresh(record, std::move(verified.schema)));
  return ViewFor(record);
}

Result<std::shared_ptr<const SchemaView>> InstanceStore::Rebase(
    InstanceId id, SchemaId new_base) {
  auto it = records_.find(id);
  if (it == records_.end()) return Status::NotFound("no such instance");
  Record& record = it->second;
  ADEPT_ASSIGN_OR_RETURN(std::shared_ptr<const ProcessSchema> base,
                         repository_->Get(new_base));
  if (!record.biased()) {
    record.base_schema = new_base;
    return ViewFor(record);
  }
  // Seed from the new base version's analysis: every bias op contributes
  // its region, so only the blocks the bias touches are re-verified.
  ADEPT_ASSIGN_OR_RETURN(std::shared_ptr<const SchemaAnalysis> base_analysis,
                         repository_->AnalysisFor(new_base));
  BiasIdAllocator alloc;
  ADEPT_ASSIGN_OR_RETURN(Delta::VerifiedSchema verified,
                         record.bias.ApplyVerified(*base, base_analysis.get(),
                                                   base->version(), &alloc));
  record.base_schema = new_base;
  record.report = std::move(verified.report);
  record.analysis = std::move(verified.analysis);
  ADEPT_RETURN_IF_ERROR(Refresh(record, std::move(verified.schema)));
  return ViewFor(record);
}

Result<std::shared_ptr<const SchemaView>> InstanceStore::ClearBias(
    InstanceId id, SchemaId new_base) {
  auto it = records_.find(id);
  if (it == records_.end()) return Status::NotFound("no such instance");
  Record& record = it->second;
  ADEPT_RETURN_IF_ERROR(repository_->Get(new_base).status());
  record.bias = Delta();
  record.block = nullptr;
  record.full_copy = nullptr;
  record.report = VerificationReport();
  record.analysis = nullptr;
  record.base_schema = new_base;
  return ViewFor(record);
}

Result<std::shared_ptr<const SchemaView>> InstanceStore::ExecutionSchema(
    InstanceId id) const {
  auto it = records_.find(id);
  if (it == records_.end()) return Status::NotFound("no such instance");
  return ViewFor(it->second);
}

InstanceStore::MemoryStats InstanceStore::Memory() const {
  MemoryStats stats;
  stats.shared_schemas = repository_->MemoryFootprint();
  for (const auto& [_, record] : records_) {
    stats.records += sizeof(Record);
    for (const auto& op : record.bias.ops()) {
      stats.records += op->ToJson().Dump().size();  // serialized op size
    }
    if (record.block != nullptr) {
      stats.blocks += record.block->MemoryFootprint();
    }
    if (record.full_copy != nullptr) {
      stats.full_copies += record.full_copy->MemoryFootprint();
    }
  }
  return stats;
}

}  // namespace adept
