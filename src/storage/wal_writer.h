// WalWriter: group-commit front end for WriteAheadLog.
//
// Concurrent appenders call Enqueue() and immediately receive a monotonic
// LSN ticket; a per-log background thread drains the queue, coalesces every
// pending frame into one stdio write burst, applies the configured SyncMode
// once per batch, and wakes the waiters whose LSN is now durable. Under N
// concurrent appenders that turns N flushes/fsyncs into one — the classic
// group-commit amortization (cf. realm-core's group writer) — while
// preserving exactly the per-record durability contract of
// WriteAheadLog::Sync.
//
// Threading: Enqueue/WaitDurable/Append are safe from any thread. The
// underlying WriteAheadLog is touched only by the background thread (and by
// Truncate(), which first drains the queue and parks the thread).
//
// Failure model: an I/O error is sticky. The failing batch and every later
// WaitDurable whose LSN is not yet durable return the error; already-durable
// LSNs keep reporting OK. A successful Truncate() — the checkpoint path,
// called after a snapshot covering all enqueued LSNs was written — starts a
// fresh file and clears the sticky error.

#ifndef ADEPT_STORAGE_WAL_WRITER_H_
#define ADEPT_STORAGE_WAL_WRITER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "storage/wal.h"

namespace adept {

struct WalWriterOptions {
  // Durability applied once per drained batch (see SyncMode in wal.h).
  SyncMode sync = SyncMode::kFlush;
  // Cap on frames coalesced into one write+sync cycle; bounds the latency
  // a single huge backlog can impose on the oldest waiter.
  size_t max_batch_records = 4096;
  // LSN tickets start above max(this, the log's persisted last LSN).
  // Recovery seeds it with the snapshot's covered LSN: after a checkpoint
  // truncated the log, the file alone no longer remembers how far
  // numbering got, and a restart that restarted at 1 would make the next
  // recovery skip genuinely new records as "already covered".
  uint64_t min_last_lsn = 0;
};

class WalWriter {
 public:
  // Opens (creating or appending) the log at `path` and starts the writer
  // thread. LSN numbering resumes from the existing frames. When the
  // caller already parsed the log (recovery replays it first), pass that
  // pass's WalScan as `prescan` so the file is not read a second time
  // (WriteAheadLog::OpenScanned).
  static Result<std::unique_ptr<WalWriter>> Open(
      const std::string& path, const WalWriterOptions& options = {},
      const WalScan* prescan = nullptr);

  // Drains every enqueued record, then stops and joins the writer thread.
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Serializes `record`, enqueues it, and returns its LSN ticket. Never
  // blocks on I/O; write/sync errors surface in WaitDurable.
  uint64_t Enqueue(const JsonValue& record);

  // Blocks until every record with an LSN <= `lsn` is durable per the
  // configured SyncMode, or returns the sticky writer error.
  Status WaitDurable(uint64_t lsn);

  // Synchronous append: Enqueue + WaitDurable. Still benefits from group
  // commit when other threads append concurrently.
  Status Append(const JsonValue& record);

  // Checkpoint compaction: drains the queue, truncates the underlying log,
  // and (on success) clears any sticky error. Contract: the caller must
  // (a) have persisted a snapshot covering last_enqueued_lsn() and
  // (b) exclude concurrent Enqueue/Append for the duration — a record
  // enqueued mid-truncation could be deleted while its waiter is told it
  // is durable. AdeptSystem satisfies both (single-threaded engine turn;
  // the cluster checkpoints under the shard lock).
  Status Truncate();

  // Checkpoint compaction by replacement: drains the queue, then
  // atomically swaps the log's contents for `records` (written to a
  // "<path>.rewrite" temp file, synced per the configured SyncMode, and
  // renamed over the live path — a crash mid-rewrite leaves the old file
  // intact). The rewritten frames continue the existing LSN numbering, so
  // outstanding WaitDurable tickets stay valid, and a success clears any
  // sticky error. Same exclusion contract as Truncate: `records` must be
  // the caller's authoritative replacement for everything logged so far,
  // and no concurrent Enqueue/Append may run. The worklist service uses
  // this to rewrite its claim journal as one record per live claim.
  Status Rewrite(const std::vector<JsonValue>& records);

  const std::string& path() const { return path_; }
  SyncMode sync_mode() const { return options_.sync; }
  // Highest LSN ticket handed out so far.
  uint64_t last_enqueued_lsn() const;
  // Highest LSN known durable per the configured SyncMode.
  uint64_t durable_lsn() const;

 private:
  struct Pending {
    uint64_t lsn;
    std::string payload;
  };

  WalWriter(std::string path, const WalWriterOptions& options,
            std::unique_ptr<WriteAheadLog> log);

  void WriterLoop();

  const std::string path_;
  const WalWriterOptions options_;
  // Touched only by the writer thread, except in Truncate() after a drain.
  std::unique_ptr<WriteAheadLog> log_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;     // wakes the writer thread
  std::condition_variable durable_cv_;  // wakes WaitDurable/Truncate callers
  std::deque<Pending> queue_;           // guarded by mu_
  uint64_t next_lsn_ = 0;               // guarded by mu_; last ticket issued
  uint64_t durable_lsn_ = 0;            // guarded by mu_
  Status error_;                        // guarded by mu_; sticky
  bool writing_ = false;                // guarded by mu_; batch in flight
  bool stopping_ = false;               // guarded by mu_
  bool stopped_ = false;                // guarded by mu_; loop exited
  std::thread writer_;
};

}  // namespace adept

#endif  // ADEPT_STORAGE_WAL_WRITER_H_
