// WalWriter: leader-based group-commit front end for WriteAheadLog.
//
// Concurrent appenders call Enqueue() and immediately receive a monotonic
// LSN ticket. Durability is leader-driven: the first WaitDurable caller
// whose LSN is not yet durable becomes the *leader* and drains the queue
// inline on its own thread — one stdio write burst, one Sync per batch —
// while followers sleep until their LSN is covered; when the leader's
// batch completes, the next unsatisfied follower takes over the leader
// role for whatever queued up meanwhile. Under N concurrent appenders
// that turns N flushes/fsyncs into one (the classic group-commit
// amortization, cf. realm-core's group writer); under ONE appender the
// append-wait-drain path runs entirely on the caller's thread, so group
// commit no longer pays the writer-thread handoff (two context switches
// per append) that historically kept kFlush group commit behind plain
// per-append flushing at low appender counts.
//
// A background thread still exists, but only as the drain of last resort
// for records nobody waits on — fire-and-forget Enqueue()s (the cluster's
// defer_wal_sync pipelining, the worklist's engine-event journaling). It
// wakes only when the queue is non-empty and no waiter is present, so it
// never races a leader for the log.
//
// Threading: Enqueue/WaitDurable/Append are safe from any thread. The
// underlying WriteAheadLog is touched only while `writing_` is held (by
// the current leader or the background thread) or under mu_ with a
// drained queue (Truncate/Rewrite).
//
// Failure model: an I/O error is sticky. The failing batch and every later
// WaitDurable whose LSN is not yet durable return the error; already-durable
// LSNs keep reporting OK. A successful Truncate() — the checkpoint path,
// called after a snapshot covering all enqueued LSNs was written — starts a
// fresh file and clears the sticky error.

#ifndef ADEPT_STORAGE_WAL_WRITER_H_
#define ADEPT_STORAGE_WAL_WRITER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "common/status.h"
#include "storage/wal.h"

namespace adept {

// Observer of locally durable batches, used to extend WaitDurable's
// meaning from "on this disk" to "on a quorum" (repl/replication.h).
//
//   * OnDurableBatch runs on the draining thread (a leader or the
//     background thread) right after the batch's Sync succeeded, with the
//     writer mutex released but the drain token still held — batches are
//     delivered one at a time, in LSN order. It must not block: hand the
//     frames to a buffer and return (network I/O happens on peer threads).
//   * WaitRemote runs on the WaitDurable caller's thread with no writer
//     lock held, only after the LSN is locally durable. Its error becomes
//     the WaitDurable result (local durability is not undone).
//
// Lifetime: the hook must outlive every in-flight Enqueue/WaitDurable and
// stay attached until the writer is idle; detach (SetCommitHook(nullptr))
// only with no concurrent appenders, then destroy the hook.
class WalCommitHook {
 public:
  virtual ~WalCommitHook() = default;
  virtual void OnDurableBatch(const std::vector<WalFrame>& frames) = 0;
  virtual Status WaitRemote(uint64_t lsn) = 0;
};

struct WalWriterOptions {
  // Durability applied once per drained batch (see SyncMode in wal.h).
  SyncMode sync = SyncMode::kFlush;
  // Cap on frames coalesced into one write+sync cycle; bounds the latency
  // a single huge backlog can impose on the oldest waiter.
  size_t max_batch_records = 4096;
  // LSN tickets start above max(this, the log's persisted last LSN).
  // Recovery seeds it with the snapshot's covered LSN: after a checkpoint
  // truncated the log, the file alone no longer remembers how far
  // numbering got, and a restart that restarted at 1 would make the next
  // recovery skip genuinely new records as "already covered".
  uint64_t min_last_lsn = 0;
};

class WalWriter {
 public:
  // Opens (creating or appending) the log at `path` and starts the writer
  // thread. LSN numbering resumes from the existing frames. When the
  // caller already parsed the log (recovery replays it first), pass that
  // pass's WalScan as `prescan` so the file is not read a second time
  // (WriteAheadLog::OpenScanned).
  static Result<std::unique_ptr<WalWriter>> Open(
      const std::string& path, const WalWriterOptions& options = {},
      const WalScan* prescan = nullptr);

  // Drains every enqueued record, then stops and joins the writer thread.
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Serializes `record`, enqueues it, and returns its LSN ticket. Never
  // blocks on I/O; write/sync errors surface in WaitDurable.
  uint64_t Enqueue(const JsonValue& record);

  // Blocks until every record with an LSN <= `lsn` is durable per the
  // configured SyncMode, or returns the sticky writer error. The calling
  // thread may be drafted as the group-commit leader and perform the
  // write+sync itself (see the header comment).
  Status WaitDurable(uint64_t lsn);

  // Synchronous append: Enqueue + WaitDurable. Still benefits from group
  // commit when other threads append concurrently.
  Status Append(const JsonValue& record);

  // Checkpoint compaction: drains the queue, truncates the underlying log,
  // and (on success) clears any sticky error. Contract: the caller must
  // (a) have persisted a snapshot covering last_enqueued_lsn() and
  // (b) exclude concurrent Enqueue/Append for the duration — a record
  // enqueued mid-truncation could be deleted while its waiter is told it
  // is durable. AdeptSystem satisfies both (single-threaded engine turn;
  // the cluster checkpoints under the shard lock).
  Status Truncate();

  // Checkpoint compaction by replacement: drains the queue, then
  // atomically swaps the log's contents for `records` (written to a
  // "<path>.rewrite" temp file, synced per the configured SyncMode, and
  // renamed over the live path — a crash mid-rewrite leaves the old file
  // intact). The rewritten frames continue the existing LSN numbering, so
  // outstanding WaitDurable tickets stay valid, and a success clears any
  // sticky error. Same exclusion contract as Truncate: `records` must be
  // the caller's authoritative replacement for everything logged so far,
  // and no concurrent Enqueue/Append may run. The worklist service uses
  // this to rewrite its claim journal as one record per live claim.
  Status Rewrite(const std::vector<JsonValue>& records);

  // Attaches (or, with nullptr, detaches) the commit hook; see
  // WalCommitHook above for the delivery and lifetime contract. Frames
  // drained before the attach are not replayed through the hook — the
  // replication layer reads them from the file (WriteAheadLog::ReadTail).
  void SetCommitHook(WalCommitHook* hook);

  const std::string& path() const { return path_; }
  SyncMode sync_mode() const { return options_.sync; }
  // Highest LSN ticket handed out so far.
  uint64_t last_enqueued_lsn() const;
  // Highest LSN known durable per the configured SyncMode.
  uint64_t durable_lsn() const;

 private:
  struct Pending {
    uint64_t lsn;
    std::string payload;
  };

  WalWriter(std::string path, const WalWriterOptions& options,
            std::unique_ptr<WriteAheadLog> log);

  // Takes one batch off the queue and writes+syncs it with mu_ released
  // (`lock` must hold mu_; writing_ is set for the duration). Runs on a
  // leader's thread or the background thread.
  void DrainBatchLocked(std::unique_lock<std::mutex>& lock);
  // The leader/follower wait loop; `lock` must hold mu_.
  Status WaitDurableLocked(uint64_t lsn, std::unique_lock<std::mutex>& lock);
  void WriterLoop();

  const std::string path_;
  const WalWriterOptions options_;
  // Touched only while writing_ is held, or under mu_ after a drain
  // (Truncate/Rewrite).
  std::unique_ptr<WriteAheadLog> log_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;     // wakes the background thread
  std::condition_variable durable_cv_;  // wakes WaitDurable/Truncate callers
  std::deque<Pending> queue_;           // guarded by mu_
  uint64_t next_lsn_ = 0;               // guarded by mu_; last ticket issued
  uint64_t durable_lsn_ = 0;            // guarded by mu_
  WalCommitHook* hook_ = nullptr;       // guarded by mu_ (pointer itself)
  Status error_;                        // guarded by mu_; sticky
  size_t waiters_ = 0;                  // guarded by mu_; WaitDurable callers
  bool writing_ = false;                // guarded by mu_; batch in flight
  bool stopping_ = false;               // guarded by mu_
  bool stopped_ = false;                // guarded by mu_; loop exited
  std::thread writer_;
};

}  // namespace adept

#endif  // ADEPT_STORAGE_WAL_WRITER_H_
