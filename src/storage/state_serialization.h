// JSON (de)serialization of instance runtime state (marking, trace, data
// context, loop counters) for snapshots and recovery.

#ifndef ADEPT_STORAGE_STATE_SERIALIZATION_H_
#define ADEPT_STORAGE_STATE_SERIALIZATION_H_

#include "common/json.h"
#include "common/status.h"
#include "runtime/instance.h"

namespace adept {

JsonValue MarkingToJson(const Marking& marking);
Result<Marking> MarkingFromJson(const JsonValue& json);

JsonValue TraceToJson(const ExecutionTrace& trace);
Result<ExecutionTrace> TraceFromJson(const JsonValue& json);

JsonValue DataContextToJson(const DataContext& data);
Result<DataContext> DataContextFromJson(const JsonValue& json);

// Full runtime state of an instance (schema reference excluded — the caller
// persists base schema id + bias delta separately).
JsonValue InstanceStateToJson(const ProcessInstance& instance);
Status RestoreInstanceState(ProcessInstance& instance, const JsonValue& json);

}  // namespace adept

#endif  // ADEPT_STORAGE_STATE_SERIALIZATION_H_
