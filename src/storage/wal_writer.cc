#include "storage/wal_writer.h"

#include <algorithm>
#include <filesystem>
#include <utility>
#include <vector>

namespace adept {

Result<std::unique_ptr<WalWriter>> WalWriter::Open(
    const std::string& path, const WalWriterOptions& options,
    const WalScan* prescan) {
  std::unique_ptr<WriteAheadLog> log;
  if (prescan != nullptr) {
    ADEPT_ASSIGN_OR_RETURN(log, WriteAheadLog::OpenScanned(path, *prescan));
  } else {
    ADEPT_ASSIGN_OR_RETURN(log, WriteAheadLog::Open(path));
  }
  return std::unique_ptr<WalWriter>(
      new WalWriter(path, options, std::move(log)));
}

WalWriter::WalWriter(std::string path, const WalWriterOptions& options,
                     std::unique_ptr<WriteAheadLog> log)
    : path_(std::move(path)), options_(options), log_(std::move(log)) {
  next_lsn_ = std::max(log_->last_lsn(), options_.min_last_lsn);
  durable_lsn_ = next_lsn_;
  writer_ = std::thread([this] { WriterLoop(); });
}

WalWriter::~WalWriter() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  if (writer_.joinable()) writer_.join();
}

uint64_t WalWriter::Enqueue(const JsonValue& record) {
  std::string payload = record.Dump();  // serialize outside the lock
  uint64_t lsn;
  bool background = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    lsn = ++next_lsn_;
    queue_.push_back({lsn, std::move(payload)});
    // With a waiter around, that waiter (or the current leader's handover)
    // drains the record; only a fire-and-forget append with nobody waiting
    // needs the background thread.
    background = waiters_ == 0;
  }
  if (background) work_cv_.notify_one();
  return lsn;
}

Status WalWriter::WaitDurableLocked(uint64_t lsn,
                                    std::unique_lock<std::mutex>& lock) {
  ++waiters_;
  while (durable_lsn_ < lsn && error_.ok() && !stopped_) {
    if (!writing_ && !queue_.empty()) {
      // Leader election is implicit: whoever observes an idle log with a
      // backlog drains it inline. Followers sleep below; when this batch
      // lands, any follower whose LSN is still pending becomes the next
      // leader for what queued up during the I/O.
      DrainBatchLocked(lock);
    } else {
      durable_cv_.wait(lock);
    }
  }
  --waiters_;
  if (waiters_ == 0 && !queue_.empty()) {
    // Records arrived while the last waiter was finishing up; hand the
    // remainder to the background drain.
    work_cv_.notify_one();
  }
  if (durable_lsn_ >= lsn) return Status::OK();
  if (!error_.ok()) return error_;
  return Status::Corruption("WAL writer stopped before LSN became durable");
}

Status WalWriter::WaitDurable(uint64_t lsn) {
  WalCommitHook* hook = nullptr;
  {
    std::unique_lock<std::mutex> lock(mu_);
    ADEPT_RETURN_IF_ERROR(WaitDurableLocked(lsn, lock));
    hook = hook_;
  }
  // Remote durability (quorum acks) is awaited with mu_ released: the wait
  // blocks on the network, and holding mu_ here would stall every local
  // appender behind a slow replica.
  if (hook != nullptr) return hook->WaitRemote(lsn);
  return Status::OK();
}

Status WalWriter::Append(const JsonValue& record) {
  // One lock acquisition covers enqueue + lead + wait: the solo-appender
  // path is append, inline write+sync, return — no handoff, no second
  // mutex round trip.
  std::string payload = record.Dump();  // serialize outside the lock
  uint64_t lsn;
  WalCommitHook* hook = nullptr;
  {
    std::unique_lock<std::mutex> lock(mu_);
    lsn = ++next_lsn_;
    queue_.push_back({lsn, std::move(payload)});
    ADEPT_RETURN_IF_ERROR(WaitDurableLocked(lsn, lock));
    hook = hook_;
  }
  if (hook != nullptr) return hook->WaitRemote(lsn);
  return Status::OK();
}

void WalWriter::SetCommitHook(WalCommitHook* hook) {
  std::lock_guard<std::mutex> lock(mu_);
  hook_ = hook;
}

Status WalWriter::Truncate() {
  std::unique_lock<std::mutex> lock(mu_);
  // Drain: once the queue is empty and no batch is in flight, the writer
  // thread is parked on work_cv_ and cannot touch log_ while we hold mu_.
  durable_cv_.wait(lock,
                   [&] { return (queue_.empty() && !writing_) || stopped_; });
  if (!queue_.empty() || writing_) {
    return Status::Corruption("WAL writer stopped with a pending backlog");
  }
  Status st = log_->Truncate();
  if (st.ok()) {
    // Fresh file: a prior I/O failure is repaired, and every LSN handed out
    // so far is covered by the caller's snapshot.
    error_ = Status::OK();
    durable_lsn_ = next_lsn_;
    durable_cv_.notify_all();
  }
  return st;
}

Status WalWriter::Rewrite(const std::vector<JsonValue>& records) {
  std::unique_lock<std::mutex> lock(mu_);
  // Drain exactly like Truncate: with the queue empty, no batch in flight,
  // and mu_ held, the writer thread is parked and cannot touch log_.
  durable_cv_.wait(lock,
                   [&] { return (queue_.empty() && !writing_) || stopped_; });
  if (!queue_.empty() || writing_) {
    return Status::Corruption("WAL writer stopped with a pending backlog");
  }
  // Build the replacement under a temp name; the live file stays intact
  // until the rename, so a crash at any point here loses nothing.
  const std::string tmp = path_ + ".rewrite";
  std::error_code ec;
  std::filesystem::remove(tmp, ec);
  if (ec) {
    return Status::Corruption("cannot clear rewrite temp '" + tmp +
                              "': " + ec.message());
  }
  auto replacement = WriteAheadLog::Open(tmp);
  if (!replacement.ok()) return replacement.status();
  uint64_t lsn = next_lsn_;
  for (const JsonValue& record : records) {
    Status st = (*replacement)->AppendFrame(++lsn, record.Dump());
    if (!st.ok()) return st;
  }
  Status synced = (*replacement)->Sync(options_.sync);
  if (!synced.ok()) return synced;
  // The atomic swap: the replacement's open handle follows the inode to
  // the live path, so it simply becomes the log.
  ADEPT_RETURN_IF_ERROR((*replacement)->RenameTo(path_));
  log_ = std::move(*replacement);
  next_lsn_ = lsn;
  // Every outstanding ticket is covered by the caller's replacement
  // records (the exclusion contract), and a prior I/O failure is repaired
  // by the fresh file.
  error_ = Status::OK();
  durable_lsn_ = next_lsn_;
  durable_cv_.notify_all();
  return Status::OK();
}

uint64_t WalWriter::last_enqueued_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_;
}

uint64_t WalWriter::durable_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_lsn_;
}

void WalWriter::DrainBatchLocked(std::unique_lock<std::mutex>& lock) {
  std::vector<Pending> batch;
  batch.reserve(std::min(queue_.size(), options_.max_batch_records));
  while (!queue_.empty() && batch.size() < options_.max_batch_records) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  writing_ = true;
  WalCommitHook* hook = hook_;
  lock.unlock();

  // Group commit: one frame write per record, one Sync per batch.
  Status st;
  for (const Pending& pending : batch) {
    st = log_->AppendFrame(pending.lsn, pending.payload);
    if (!st.ok()) break;
  }
  if (st.ok()) st = log_->Sync(options_.sync);

  if (st.ok() && hook != nullptr) {
    // Still inside the drain token (writing_), so hooks see batches one at
    // a time in LSN order; the contract says this only buffers.
    std::vector<WalFrame> frames;
    frames.reserve(batch.size());
    for (const Pending& pending : batch) {
      frames.push_back({pending.lsn, pending.payload});
    }
    hook->OnDurableBatch(frames);
  }

  lock.lock();
  writing_ = false;
  if (st.ok()) {
    durable_lsn_ = batch.back().lsn;
  } else if (error_.ok()) {
    error_ = st;
  }
  // Wake followers (one of them leads the next batch if the queue refilled
  // during the I/O) and Truncate/Rewrite drains.
  durable_cv_.notify_all();
  if (!queue_.empty() && waiters_ == 0) work_cv_.notify_one();
}

void WalWriter::WriterLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    // Drain of last resort: only runs for records nobody waits on
    // (defer_wal_sync pipelining, fire-and-forget journal appends) — an
    // active waiter is always the preferred leader. On shutdown the
    // backlog is drained here regardless.
    work_cv_.wait(lock, [&] {
      if (writing_) return false;  // a leader owns the log
      if (!queue_.empty()) return stopping_ || waiters_ == 0;
      return stopping_;
    });
    if (queue_.empty()) break;  // stopping_ with a drained queue
    DrainBatchLocked(lock);
  }
  stopped_ = true;
  durable_cv_.notify_all();
}

}  // namespace adept
