// InstanceStore: per-instance storage representation (paper Fig. 2).
//
// Unbiased instances are stored redundant-free: a reference to the type
// schema plus their runtime state (which lives in the ProcessInstance).
// Biased instances additionally carry their bias Delta; how their execution
// schema is represented is the storage strategy under evaluation:
//
//   kOverlay (paper's hybrid): keep a minimal substitution block, resolve
//       accesses by overlaying it on the shared base schema
//   kFullCopy: materialize and cache a complete private schema
//   kMaterializeOnDemand: store only the delta; build a materialized schema
//       on every access and throw it away afterwards
//
// The store never talks to the runtime; the compliance layer wires the
// returned execution views into ProcessInstance::AdoptSchema.

#ifndef ADEPT_STORAGE_INSTANCE_STORE_H_
#define ADEPT_STORAGE_INSTANCE_STORE_H_

#include <map>
#include <memory>

#include "change/delta.h"
#include "common/ids.h"
#include "common/status.h"
#include "model/schema_view.h"
#include "storage/overlay_schema.h"
#include "storage/schema_repository.h"
#include "storage/substitution_block.h"

namespace adept {

enum class StorageStrategy {
  kOverlay = 0,
  kFullCopy,
  kMaterializeOnDemand,
};

const char* StorageStrategyToString(StorageStrategy s);

class InstanceStore {
 public:
  struct Record {
    InstanceId id;
    SchemaId base_schema;
    StorageStrategy strategy = StorageStrategy::kOverlay;
    Delta bias;  // empty for unbiased instances
    // Strategy-dependent cached representation (unbiased: both empty).
    std::shared_ptr<const SubstitutionBlock> block;
    std::shared_ptr<const ProcessSchema> full_copy;
    // Verification artifacts of the instance-specific schema (base + bias):
    // the full report of the last verified bias application (warnings
    // included) and the analysis that seeds incremental re-verification of
    // the next bias. Empty/null while unbiased (the type schema's report
    // lives in the repository).
    VerificationReport report;
    std::shared_ptr<const SchemaAnalysis> analysis;

    bool biased() const { return !bias.empty(); }
  };

  explicit InstanceStore(SchemaRepository* repository)
      : repository_(repository) {}
  InstanceStore(const InstanceStore&) = delete;
  InstanceStore& operator=(const InstanceStore&) = delete;

  Status Register(InstanceId id, SchemaId base_schema,
                  StorageStrategy strategy = StorageStrategy::kOverlay);
  Status Unregister(InstanceId id);

  Result<const Record*> Get(InstanceId id) const;
  bool IsBiased(InstanceId id) const;
  size_t size() const { return records_.size(); }
  std::vector<InstanceId> Ids() const;

  // Extends the instance's bias by `delta` (ops get pinned bias-range ids),
  // verifies the combined schema, updates the representation, and returns
  // the new execution view.
  //   kFailedPrecondition - an op does not apply structurally
  //   kVerificationFailed - combined schema breaks a buildtime rule
  Result<std::shared_ptr<const SchemaView>> AddBias(InstanceId id,
                                                    Delta delta);

  // Re-bases the instance onto `new_base` (migration), re-applying any bias
  // with pinned ids. Same error contract as AddBias.
  Result<std::shared_ptr<const SchemaView>> Rebase(InstanceId id,
                                                   SchemaId new_base);

  // Drops the instance's bias entirely and points it at `new_base`
  // (bias cancellation during migration of equivalent changes).
  Result<std::shared_ptr<const SchemaView>> ClearBias(InstanceId id,
                                                      SchemaId new_base);

  // Current execution schema view under the record's strategy. For
  // kMaterializeOnDemand this materializes a fresh copy every call.
  Result<std::shared_ptr<const SchemaView>> ExecutionSchema(
      InstanceId id) const;

  struct MemoryStats {
    size_t shared_schemas = 0;    // repository (shared by all instances)
    size_t blocks = 0;            // substitution blocks (kOverlay)
    size_t full_copies = 0;       // private schemas (kFullCopy)
    size_t records = 0;           // bookkeeping incl. bias deltas
    size_t total() const {
      return shared_schemas + blocks + full_copies + records;
    }
  };
  MemoryStats Memory() const;

 private:
  // Rebuilds the cached representation of a biased record.
  Status Refresh(Record& record,
                 std::shared_ptr<const ProcessSchema> materialized);
  Result<std::shared_ptr<const SchemaView>> ViewFor(const Record& record) const;

  SchemaRepository* repository_;
  std::map<InstanceId, Record> records_;
};

}  // namespace adept

#endif  // ADEPT_STORAGE_INSTANCE_STORE_H_
