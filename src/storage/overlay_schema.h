// OverlaySchema: a biased instance's execution schema resolved on the fly
// as "original schema + substitution block" without materialization
// (paper Fig. 2, the hybrid representation).
//
// The runtime executes against this view exactly as it would against a
// materialized ProcessSchema; every query first consults the substitution
// block (added/replaced/removed entities) and falls through to the shared
// base schema. Edges incident to removed nodes are hidden automatically.

#ifndef ADEPT_STORAGE_OVERLAY_SCHEMA_H_
#define ADEPT_STORAGE_OVERLAY_SCHEMA_H_

#include <memory>

#include "model/schema.h"
#include "model/schema_view.h"
#include "storage/substitution_block.h"

namespace adept {

class OverlaySchema final : public SchemaView {
 public:
  OverlaySchema(std::shared_ptr<const ProcessSchema> base,
                std::shared_ptr<const SubstitutionBlock> block);

  const std::string& type_name() const override { return base_->type_name(); }
  int version() const override { return block_->version; }
  NodeId start_node() const override { return base_->start_node(); }
  NodeId end_node() const override { return base_->end_node(); }
  size_t node_count() const override { return node_count_; }
  size_t edge_count() const override { return edge_count_; }
  size_t data_count() const override { return data_count_; }

  const Node* FindNode(NodeId id) const override;
  const Edge* FindEdge(EdgeId id) const override;
  const DataElement* FindData(DataId id) const override;
  void VisitNodes(const std::function<void(const Node&)>& fn) const override;
  void VisitEdges(const std::function<void(const Edge&)>& fn) const override;
  void VisitData(
      const std::function<void(const DataElement&)>& fn) const override;
  void VisitOutEdges(
      NodeId node, const std::function<void(const Edge&)>& fn) const override;
  void VisitInEdges(
      NodeId node, const std::function<void(const Edge&)>& fn) const override;
  void VisitDataEdges(NodeId node,
                      const std::function<void(const DataEdge&)>& fn)
      const override;

  // Materializes the overlay into a frozen, standalone schema.
  Result<std::shared_ptr<ProcessSchema>> Materialize() const;

  const std::shared_ptr<const ProcessSchema>& base() const { return base_; }
  const std::shared_ptr<const SubstitutionBlock>& block() const {
    return block_;
  }

  // Footprint attributable to this instance (the block; the base is shared).
  size_t MemoryFootprint() const {
    return sizeof(*this) + block_->MemoryFootprint();
  }

 private:
  bool EdgeVisible(const Edge& e) const;

  std::shared_ptr<const ProcessSchema> base_;
  std::shared_ptr<const SubstitutionBlock> block_;
  size_t node_count_ = 0;
  size_t edge_count_ = 0;
  size_t data_count_ = 0;
};

}  // namespace adept

#endif  // ADEPT_STORAGE_OVERLAY_SCHEMA_H_
