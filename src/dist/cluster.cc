#include "dist/cluster.h"

#include <algorithm>

namespace adept {

ServerId SimulatedCluster::AddServer(const std::string& name) {
  ServerId id(static_cast<uint32_t>(servers_.size()));
  servers_.push_back({name, {}});
  return id;
}

Result<std::string> SimulatedCluster::ServerName(ServerId server) const {
  if (!Known(server)) return Status::NotFound("unknown server");
  return servers_[server.value()].name;
}

ServerId SimulatedCluster::home_server() const {
  return servers_.empty() ? ServerId::Invalid() : ServerId(0);
}

ServerId SimulatedCluster::ServerOf(const Node& node) const {
  return Known(node.server) ? node.server : home_server();
}

std::vector<ServerId> SimulatedCluster::PartitionsOf(
    const SchemaView& schema) const {
  std::vector<ServerId> partitions;
  schema.VisitNodes([&](const Node& node) {
    if (node.type != NodeType::kActivity) return;
    ServerId owner = ServerOf(node);
    if (!owner.valid()) return;
    if (std::find(partitions.begin(), partitions.end(), owner) ==
        partitions.end()) {
      partitions.push_back(owner);
    }
  });
  return partitions;
}

void SimulatedCluster::Send(DistMessageKind kind, ServerId from, ServerId to,
                            InstanceId instance, NodeId node) {
  message_log_.push_back({kind, from, to, instance, node});
  servers_[from.value()].stats.messages_sent++;
  servers_[to.value()].stats.messages_received++;
}

Status SimulatedCluster::RunDistributed(ProcessInstance& instance,
                                        SimulationDriver& driver,
                                        int max_steps) {
  if (servers_.empty()) {
    return Status::FailedPrecondition("cluster has no servers");
  }
  ServerId controller = home_server();
  for (int step = 0; step < max_steps; ++step) {
    if (instance.Finished()) return Status::OK();
    std::vector<NodeId> ready = instance.ActivatedActivities();
    if (ready.empty()) {
      return instance.Finished()
                 ? Status::OK()
                 : Status::FailedPrecondition(
                       "instance is blocked: no activated activities");
    }
    // Locality heuristic: stay on the current controller when possible.
    std::vector<NodeId> local;
    for (NodeId node : ready) {
      const Node* n = instance.schema().FindNode(node);
      if (n != nullptr && ServerOf(*n) == controller) local.push_back(node);
    }
    const std::vector<NodeId>& pool = local.empty() ? ready : local;
    NodeId chosen = pool[driver.rng().NextIndex(pool.size())];
    const Node* node = instance.schema().FindNode(chosen);
    if (node == nullptr) return Status::Internal("activated node vanished");

    ServerId target = ServerOf(*node);
    if (target != controller) {
      Send(DistMessageKind::kHandover, controller, target, instance.id(),
           chosen);
      servers_[target.value()].stats.handovers_in++;
      ++handover_count_;
      controller = target;
    }

    std::vector<ProcessInstance::DataWrite> writes;
    instance.schema().VisitDataEdges(chosen, [&](const DataEdge& de) {
      if (de.mode != AccessMode::kWrite) return;
      writes.push_back({de.data, driver.PlanValue(instance, de)});
    });
    ADEPT_RETURN_IF_ERROR(instance.StartActivity(chosen));
    ADEPT_RETURN_IF_ERROR(instance.CompleteActivity(chosen, writes));
    servers_[controller.value()].stats.activities_executed++;
  }
  return Status::Internal("instance did not finish within step budget");
}

Status SimulatedCluster::PropagateMigration(const MigrationReport& report,
                                            const SchemaView& schema) {
  if (servers_.empty()) {
    return Status::FailedPrecondition("cluster has no servers");
  }
  ServerId home = home_server();
  std::vector<ServerId> partitions = PartitionsOf(schema);
  for (const InstanceMigrationResult& result : report.results) {
    bool migrated = result.outcome == MigrationOutcome::kMigrated ||
                    result.outcome == MigrationOutcome::kMigratedBiased ||
                    result.outcome == MigrationOutcome::kBiasCancelled;
    if (!migrated) continue;
    for (ServerId partition : partitions) {
      if (partition == home) continue;
      Send(DistMessageKind::kChangePropagation, home, partition, result.id,
           NodeId::Invalid());
    }
  }
  return Status::OK();
}

Result<ServerStats> SimulatedCluster::StatsFor(ServerId server) const {
  if (!Known(server)) return Status::NotFound("unknown server");
  return servers_[server.value()].stats;
}

}  // namespace adept
