// SimulatedCluster: distributed process control (paper Sec. 5).
//
// ADEPT partitions a process schema over multiple process servers; control
// over a running instance migrates between servers as execution enters a
// partition owned by someone else. The reproduction simulates the server
// topology in-process: activities carry an optional ServerId assignment
// (SchemaBuilder::ActivityOptions::server), unassigned activities belong to
// the *home* server (the first one registered), and RunDistributed() drives
// an instance to completion while
//   * executing every activity on its partition server,
//   * migrating control whenever the next activity lives on another server
//     (one handover message per switch), and
//   * preferring activated activities of the current controller (locality
//     heuristic) to keep handovers rare.
//
// PropagateMigration() models the fan-out of a schema-change decision after
// a type migration: every non-home partition receives one change
// propagation message per migrated instance.
//
// All messages are recorded in an inspectable log; per-server counters
// (activities executed, handovers received, messages sent/received) feed
// the examples and distribution benchmarks.

#ifndef ADEPT_DIST_CLUSTER_H_
#define ADEPT_DIST_CLUSTER_H_

#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "compliance/migration.h"
#include "model/schema_view.h"
#include "runtime/driver.h"
#include "runtime/instance.h"

namespace adept {

enum class DistMessageKind {
  kHandover,           // control migrates to another process server
  kChangePropagation,  // schema-change decision fans out to a partition
};

struct DistMessage {
  DistMessageKind kind;
  ServerId from;
  ServerId to;
  InstanceId instance;
  // Handover only: the activity whose execution forced the control switch.
  NodeId node;
};

struct ServerStats {
  size_t activities_executed = 0;
  size_t handovers_in = 0;
  size_t messages_sent = 0;
  size_t messages_received = 0;
};

class SimulatedCluster {
 public:
  SimulatedCluster() = default;

  SimulatedCluster(const SimulatedCluster&) = delete;
  SimulatedCluster& operator=(const SimulatedCluster&) = delete;

  // Registers a process server; the first one becomes the home server.
  ServerId AddServer(const std::string& name);

  Result<std::string> ServerName(ServerId server) const;
  size_t server_count() const { return servers_.size(); }

  // Owner of activities without an explicit assignment (invalid id when the
  // cluster is empty).
  ServerId home_server() const;

  // Partition server controlling `node` (explicit assignment or home).
  ServerId ServerOf(const Node& node) const;

  // Distinct partition servers of `schema`'s activities, ordered by first
  // use (ascending node id).
  std::vector<ServerId> PartitionsOf(const SchemaView& schema) const;

  // Drives `instance` to completion under distributed control (see file
  // comment). Fails with kFailedPrecondition on an empty cluster or a
  // blocked instance.
  Status RunDistributed(ProcessInstance& instance, SimulationDriver& driver,
                        int max_steps = 100000);

  // Fans the migration decision out: one kChangePropagation message per
  // migrated instance to every non-home partition of `schema`.
  Status PropagateMigration(const MigrationReport& report,
                            const SchemaView& schema);

  size_t handover_count() const { return handover_count_; }
  size_t total_messages() const { return message_log_.size(); }
  const std::vector<DistMessage>& message_log() const { return message_log_; }
  Result<ServerStats> StatsFor(ServerId server) const;

 private:
  struct ServerEntry {
    std::string name;
    ServerStats stats;
  };

  bool Known(ServerId server) const {
    return server.valid() && server.value() < servers_.size();
  }
  void Send(DistMessageKind kind, ServerId from, ServerId to,
            InstanceId instance, NodeId node);

  std::vector<ServerEntry> servers_;  // index == ServerId value
  size_t handover_count_ = 0;
  std::vector<DistMessage> message_log_;
};

}  // namespace adept

#endif  // ADEPT_DIST_CLUSTER_H_
