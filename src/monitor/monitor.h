// Monitoring component (paper Sec. 3, Fig. 3).
//
// "In our prototype the effects of ad-hoc instance modifications can be
// visualized by a special monitoring component. The same applies for
// process type changes." The reproduction renders to text:
//   * RenderSchema / RenderInstance: ASCII view of a schema (block
//     indentation) and an instance's node markings
//   * SchemaToDot: Graphviz export (sync edges dashed, loop edges curved,
//     node fill by instance state)
//   * RenderMatching: renders every instance matching a query predicate —
//     the monitoring sweep as a consumer of the unified read-side API
//   * RenderMigrationReport: the Fig. 3 migration report, one line per
//     instance with its outcome and conflict reason
//   * MonitoringLog: an InstanceObserver that records state transitions
//     and data writes for inspection

#ifndef ADEPT_MONITOR_MONITOR_H_
#define ADEPT_MONITOR_MONITOR_H_

#include <deque>
#include <string>

#include "common/status.h"
#include "compliance/migration.h"
#include "core/adept_api.h"
#include "model/schema_view.h"
#include "runtime/events.h"
#include "runtime/instance.h"
#include "runtime/instance_snapshot.h"

namespace adept {

// Indented block-structure listing of a schema (with sync edges appended).
std::string RenderSchema(const SchemaView& schema);

// Node-by-node marking of an instance, in topological order. The
// InstanceSnapshot overload is THE implementation — the lock-free
// monitoring path, renderable from any thread without blocking the
// engine. The ProcessInstance overload (WithInstance discipline) is a
// thin adapter that builds a snapshot of the live state and renders
// that, so both views are guaranteed to print identically.
std::string RenderInstance(const InstanceSnapshot& snapshot);
std::string RenderInstance(const ProcessInstance& instance);

// Graphviz dot; when `instance`/`snapshot` is non-null, nodes are colored
// by state. As with RenderInstance, the snapshot overload is the
// implementation and the live overload adapts through BuildSnapshot().
std::string SchemaToDot(const SchemaView& schema,
                        const InstanceSnapshot* snapshot);
std::string SchemaToDot(const SchemaView& schema,
                        const ProcessInstance* instance = nullptr);

// Renders every instance matching `query` (grammar: src/query/README.md),
// in ascending instance-id order — e.g.
//   RenderMatching(api, "state == running && schema == 3")
// One Query() sweep, lock-free, works identically on AdeptSystem and
// AdeptCluster. Propagates Query's errors (kInvalidArgument with a caret
// span; kFailedPrecondition from a topology-poisoned cluster).
Result<std::string> RenderMatching(const AdeptApi& api,
                                   const std::string& query);

// Fig. 3 style migration report.
std::string RenderMigrationReport(const MigrationReport& report);

// Rolling event log (bounded) for diagnostics.
class MonitoringLog : public InstanceObserver {
 public:
  explicit MonitoringLog(size_t capacity = 4096) : capacity_(capacity) {}

  void OnNodeStateChange(const ProcessInstance& instance, NodeId node,
                         NodeState from, NodeState to) override;
  void OnInstanceFinished(const ProcessInstance& instance) override;
  void OnDataWrite(const ProcessInstance& instance, NodeId writer, DataId data,
                   const DataValue& value) override;

  const std::deque<std::string>& lines() const { return lines_; }
  size_t transition_count() const { return transitions_; }
  size_t finished_count() const { return finished_; }
  std::string DebugString() const;

 private:
  void Push(std::string line);

  size_t capacity_;
  std::deque<std::string> lines_;
  size_t transitions_ = 0;
  size_t finished_ = 0;
};

}  // namespace adept

#endif  // ADEPT_MONITOR_MONITOR_H_
