// Monitoring component (paper Sec. 3, Fig. 3).
//
// "In our prototype the effects of ad-hoc instance modifications can be
// visualized by a special monitoring component. The same applies for
// process type changes." The reproduction renders to text:
//   * RenderSchema / RenderInstance: ASCII view of a schema (block
//     indentation) and an instance's node markings
//   * SchemaToDot: Graphviz export (sync edges dashed, loop edges curved,
//     node fill by instance state)
//   * RenderMigrationReport: the Fig. 3 migration report, one line per
//     instance with its outcome and conflict reason
//   * MonitoringLog: an InstanceObserver that records state transitions
//     and data writes for inspection

#ifndef ADEPT_MONITOR_MONITOR_H_
#define ADEPT_MONITOR_MONITOR_H_

#include <deque>
#include <string>

#include "compliance/migration.h"
#include "model/schema_view.h"
#include "runtime/events.h"
#include "runtime/instance.h"
#include "runtime/instance_snapshot.h"

namespace adept {

// Indented block-structure listing of a schema (with sync edges appended).
std::string RenderSchema(const SchemaView& schema);

// Node-by-node marking of an instance, in topological order. The
// ProcessInstance overload needs the live instance (WithInstance
// discipline); the InstanceSnapshot overload is the lock-free monitoring
// path — renderable from any thread without blocking the engine.
std::string RenderInstance(const ProcessInstance& instance);
std::string RenderInstance(const InstanceSnapshot& snapshot);

// Graphviz dot; when `instance`/`snapshot` is non-null, nodes are colored
// by state. The snapshot overload renders without any engine lock.
std::string SchemaToDot(const SchemaView& schema,
                        const ProcessInstance* instance = nullptr);
std::string SchemaToDot(const SchemaView& schema,
                        const InstanceSnapshot* snapshot);

// Fig. 3 style migration report.
std::string RenderMigrationReport(const MigrationReport& report);

// Rolling event log (bounded) for diagnostics.
class MonitoringLog : public InstanceObserver {
 public:
  explicit MonitoringLog(size_t capacity = 4096) : capacity_(capacity) {}

  void OnNodeStateChange(const ProcessInstance& instance, NodeId node,
                         NodeState from, NodeState to) override;
  void OnInstanceFinished(const ProcessInstance& instance) override;
  void OnDataWrite(const ProcessInstance& instance, NodeId writer, DataId data,
                   const DataValue& value) override;

  const std::deque<std::string>& lines() const { return lines_; }
  size_t transition_count() const { return transitions_; }
  size_t finished_count() const { return finished_; }
  std::string DebugString() const;

 private:
  void Push(std::string line);

  size_t capacity_;
  std::deque<std::string> lines_;
  size_t transitions_ = 0;
  size_t finished_ = 0;
};

}  // namespace adept

#endif  // ADEPT_MONITOR_MONITOR_H_
