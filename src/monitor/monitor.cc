#include "monitor/monitor.h"

#include <memory>
#include <sstream>

#include "common/string_util.h"
#include "model/block_tree.h"

namespace adept {

namespace {

std::string NodeLabel(const SchemaView& schema, NodeId id) {
  const Node* n = schema.FindNode(id);
  if (n == nullptr) return StrFormat("n%u", id.value());
  if (!n->name.empty()) return n->name;
  return NodeTypeToString(n->type);
}

void RenderBlock(const SchemaView& schema, const BlockTree& tree, int block,
                 int indent, std::ostringstream& os) {
  const BlockTree::Block& b = tree.block(block);
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  switch (b.kind) {
    case BlockTree::BlockKind::kRoot:
      break;
    case BlockTree::BlockKind::kParallel:
      os << pad << "AND {\n";
      break;
    case BlockTree::BlockKind::kConditional:
      os << pad << "XOR {\n";
      break;
    case BlockTree::BlockKind::kLoop:
      os << pad << "LOOP {\n";
      break;
    case BlockTree::BlockKind::kBranch:
      os << pad << "branch:\n";
      break;
  }
  int child_indent =
      b.kind == BlockTree::BlockKind::kRoot ? indent : indent + 1;
  if (b.kind == BlockTree::BlockKind::kBranch ||
      b.kind == BlockTree::BlockKind::kRoot) {
    for (const auto& item : b.sequence) {
      if (item.composite_block >= 0) {
        RenderBlock(schema, tree, item.composite_block, child_indent, os);
      } else {
        os << std::string(static_cast<size_t>(child_indent) * 2, ' ')
           << NodeLabel(schema, item.node) << "\n";
      }
    }
  } else {
    for (int child : b.children) {
      RenderBlock(schema, tree, child, child_indent, os);
    }
  }
  if (b.kind == BlockTree::BlockKind::kParallel ||
      b.kind == BlockTree::BlockKind::kConditional ||
      b.kind == BlockTree::BlockKind::kLoop) {
    os << pad << "}\n";
  }
}

}  // namespace

std::string RenderSchema(const SchemaView& schema) {
  std::ostringstream os;
  os << "process '" << schema.type_name() << "' V" << schema.version() << " ("
     << schema.node_count() << " nodes, " << schema.edge_count() << " edges)\n";
  auto tree = BlockTree::Build(schema);
  if (tree.ok()) {
    RenderBlock(schema, *tree, 0, 0, os);
  } else {
    os << "  <block structure unavailable: " << tree.status().message()
       << ">\n";
  }
  bool any_sync = false;
  schema.VisitEdges([&](const Edge& e) {
    if (e.type != EdgeType::kSync) return;
    if (!any_sync) {
      os << "sync edges:\n";
      any_sync = true;
    }
    os << "  " << NodeLabel(schema, e.src) << " >> " << NodeLabel(schema, e.dst)
       << "\n";
  });
  return os.str();
}

// The snapshot overload is the single implementation; the live-instance
// overload below adapts through BuildSnapshot() so both views print
// identically by construction.
std::string RenderInstance(const InstanceSnapshot& snapshot) {
  const SchemaView& schema = *snapshot.schema;
  std::ostringstream os;
  os << snapshot.id << " on '" << schema.type_name() << "' V"
     << schema.version() << (snapshot.biased ? " (ad-hoc modified)" : "")
     << (snapshot.finished ? " [finished]" : "") << "\n";
  for (NodeId node : schema.TopologicalOrder()) {
    const Node* n = schema.FindNode(node);
    if (n == nullptr || n->type != NodeType::kActivity) continue;
    os << StrFormat("  [%-12s] ",
                    NodeStateToString(snapshot.marking.node(node)))
       << n->name << "\n";
  }
  return os.str();
}

std::string RenderInstance(const ProcessInstance& instance) {
  return RenderInstance(*instance.BuildSnapshot());
}

std::string SchemaToDot(const SchemaView& schema,
                        const InstanceSnapshot* snapshot) {
  std::ostringstream os;
  os << "digraph \"" << schema.type_name() << "_v" << schema.version()
     << "\" {\n  rankdir=LR;\n  node [fontname=\"Helvetica\"];\n";
  schema.VisitNodes([&](const Node& n) {
    std::string shape = "box";
    switch (n.type) {
      case NodeType::kStartFlow:
      case NodeType::kEndFlow:
        shape = "circle";
        break;
      case NodeType::kAndSplit:
      case NodeType::kAndJoin:
        shape = "diamond";
        break;
      case NodeType::kXorSplit:
      case NodeType::kXorJoin:
        shape = "Mdiamond";
        break;
      case NodeType::kLoopStart:
      case NodeType::kLoopEnd:
        shape = "house";
        break;
      case NodeType::kActivity:
        break;
    }
    std::string fill = "white";
    if (snapshot != nullptr) {
      switch (snapshot->marking.node(n.id)) {
        case NodeState::kActivated:
          fill = "khaki";
          break;
        case NodeState::kRunning:
        case NodeState::kSuspended:
          fill = "lightblue";
          break;
        case NodeState::kCompleted:
          fill = "palegreen";
          break;
        case NodeState::kSkipped:
          fill = "lightgray";
          break;
        case NodeState::kFailed:
          fill = "salmon";
          break;
        case NodeState::kNotActivated:
          break;
      }
    }
    os << StrFormat("  n%u [label=\"%s\", shape=%s, style=filled, "
                    "fillcolor=%s];\n",
                    n.id.value(), NodeLabel(schema, n.id).c_str(),
                    shape.c_str(), fill.c_str());
  });
  schema.VisitEdges([&](const Edge& e) {
    const char* attrs = "";
    switch (e.type) {
      case EdgeType::kControl:
        attrs = "";
        break;
      case EdgeType::kSync:
        attrs = " [style=dashed, color=red, constraint=false]";
        break;
      case EdgeType::kLoop:
        attrs = " [style=dotted, constraint=false]";
        break;
    }
    os << StrFormat("  n%u -> n%u%s;\n", e.src.value(), e.dst.value(), attrs);
  });
  os << "}\n";
  return os.str();
}

std::string SchemaToDot(const SchemaView& schema,
                        const ProcessInstance* instance) {
  if (instance == nullptr) {
    return SchemaToDot(schema, static_cast<const InstanceSnapshot*>(nullptr));
  }
  // Keep the built snapshot alive across the render.
  std::shared_ptr<InstanceSnapshot> snapshot = instance->BuildSnapshot();
  return SchemaToDot(schema, snapshot.get());
}

Result<std::string> RenderMatching(const AdeptApi& api,
                                   const std::string& query) {
  ADEPT_ASSIGN_OR_RETURN(QueryResult result, api.Query(query));
  std::ostringstream os;
  for (const auto& snapshot : result) {
    os << RenderInstance(*snapshot);
  }
  return os.str();
}

std::string RenderMigrationReport(const MigrationReport& report) {
  std::ostringstream os;
  os << "=== Migration report: " << report.type_name << " V"
     << report.from_version << " -> V" << report.to_version << " ===\n";
  for (const auto& r : report.results) {
    std::string location;
    switch (r.outcome) {
      case MigrationOutcome::kMigrated:
      case MigrationOutcome::kMigratedBiased:
      case MigrationOutcome::kBiasCancelled:
        location = StrFormat("running on V%d", report.to_version);
        break;
      default:
        location = StrFormat("remains on V%d", report.from_version);
        break;
    }
    os << StrFormat("  %-6s %-28s %s",
                    (std::string("I") + std::to_string(r.id.value())).c_str(),
                    MigrationOutcomeToString(r.outcome), location.c_str());
    if (r.was_biased) os << " (ad-hoc modified)";
    if (!r.detail.empty()) os << ": " << r.detail;
    os << "\n";
  }
  os << "  " << report.Summary() << "\n";
  return os.str();
}

void MonitoringLog::Push(std::string line) {
  lines_.push_back(std::move(line));
  while (lines_.size() > capacity_) lines_.pop_front();
}

void MonitoringLog::OnNodeStateChange(const ProcessInstance& instance,
                                      NodeId node, NodeState from,
                                      NodeState to) {
  ++transitions_;
  Push(StrFormat("I%llu n%u %s -> %s",
                 static_cast<unsigned long long>(instance.id().value()),
                 node.value(), NodeStateToString(from),
                 NodeStateToString(to)));
}

void MonitoringLog::OnInstanceFinished(const ProcessInstance& instance) {
  ++finished_;
  Push(StrFormat("I%llu finished",
                 static_cast<unsigned long long>(instance.id().value())));
}

void MonitoringLog::OnDataWrite(const ProcessInstance& instance, NodeId writer,
                                DataId data, const DataValue& value) {
  Push(StrFormat("I%llu n%u wrote d%u = %s",
                 static_cast<unsigned long long>(instance.id().value()),
                 writer.value(), data.value(),
                 value.ToDisplayString().c_str()));
}

std::string MonitoringLog::DebugString() const {
  std::ostringstream os;
  for (const auto& line : lines_) os << line << "\n";
  return os.str();
}

}  // namespace adept
