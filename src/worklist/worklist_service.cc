#include "worklist/worklist_service.h"

#include <algorithm>
#include <filesystem>

#include "model/node.h"

namespace adept {

namespace {

size_t RoundUpPow2(int n) {
  size_t p = 1;
  while (p < static_cast<size_t>(n < 1 ? 1 : n)) p <<= 1;
  return p;
}

size_t Log2(size_t pow2) {
  size_t bits = 0;
  while ((size_t{1} << bits) < pow2) ++bits;
  return bits;
}

// Claimed/started items carry a claim-ledger entry in the journal; pure
// offers do not (they are re-derived from instance state on recovery).
bool CarriesClaim(const WorkItem& item) {
  return item.claimed_by.valid() &&
         (item.state == WorkItemState::kClaimed ||
          item.state == WorkItemState::kStarted);
}

}  // namespace

WorklistService::WorklistService(const OrgModel* org, AdeptApi* api,
                                 const WorklistServiceOptions& options)
    : org_(org), api_(api), options_(options) {
  size_t segments = RoundUpPow2(options.segments);
  segment_mask_ = segments - 1;
  segment_bits_ = Log2(segments);
  for (size_t i = 0; i < segments; ++i) {
    item_segments_.push_back(std::make_unique<ItemSegment>());
    role_segments_.push_back(std::make_unique<RoleSegment>());
    user_segments_.push_back(std::make_unique<UserSegment>());
    instance_segments_.push_back(std::make_unique<InstanceSegment>());
  }
}

WorklistService::~WorklistService() = default;

Status WorklistService::OpenJournal(bool fresh, const WalScan* prescan) {
  if (options_.journal_path.empty()) return Status::OK();
  WalWriterOptions writer_options;
  writer_options.sync = options_.sync;
  WalScan empty;
  if (fresh) {
    // A fresh service starts a fresh claim ledger — durably: discard any
    // stale journal up front instead of parsing it just to truncate.
    std::error_code ec;
    std::filesystem::remove(options_.journal_path, ec);
    if (ec) {
      return Status::Corruption("cannot discard stale worklist journal '" +
                                options_.journal_path + "': " + ec.message());
    }
    prescan = &empty;
  }
  ADEPT_ASSIGN_OR_RETURN(
      journal_,
      WalWriter::Open(options_.journal_path, writer_options, prescan));
  return Status::OK();
}

Result<std::unique_ptr<WorklistService>> WorklistService::Create(
    const OrgModel* org, AdeptApi* api,
    const WorklistServiceOptions& options) {
  std::unique_ptr<WorklistService> service(
      new WorklistService(org, api, options));
  ADEPT_RETURN_IF_ERROR(service->OpenJournal(/*fresh=*/true, nullptr));
  return service;
}

Result<std::unique_ptr<WorklistService>> WorklistService::Recover(
    const OrgModel* org, AdeptApi* api, const WorklistServiceOptions& options,
    const InstanceEnumerator& instances) {
  std::unique_ptr<WorklistService> service(
      new WorklistService(org, api, options));

  WalScan scan;
  if (!options.journal_path.empty()) {
    ADEPT_ASSIGN_OR_RETURN(scan, WriteAheadLog::Scan(options.journal_path));
  }

  // 1. Derive offers from recovered instance state, and remember the
  // current state of every role-carrying activity so the journal replay
  // can tell which claims are still meaningful.
  std::map<LiveKey, ActivityState> activity_states;
  instances([&](const ProcessInstance& instance) {
    for (const auto& [node, state] : instance.marking().node_states()) {
      const Node* n = OfferableActivity(instance.schema(), node);
      if (n == nullptr) continue;
      uint64_t epoch = ActivationEpoch(instance, node);
      activity_states[{instance.id().value(), node.value()}] = {
          state, n->role, epoch};
      if (state == NodeState::kActivated) {
        service->CreateItem(instance.id(), node, n->role,
                            WorkItemState::kOffered, UserId::Invalid(),
                            epoch);
      }
    }
  });

  // 2. Replay the claim journal on top of the derived offers.
  service->ReplayJournal(scan.records, activity_states);

  // 3. Reopen the writer off the same scan — one parse pass per recovery.
  ADEPT_RETURN_IF_ERROR(service->OpenJournal(/*fresh=*/false, &scan));
  return service;
}

void WorklistService::ReplayJournal(
    const std::vector<WalRecord>& records,
    const std::map<LiveKey, ActivityState>& activity_states) {
  struct Entry {
    WorkItemState state = WorkItemState::kOffered;
    UserId user;
    uint64_t epoch = 0;
    bool live = false;
  };
  std::map<LiveKey, Entry> entries;
  for (const WalRecord& record : records) {
    const JsonValue& v = record.value;
    const std::string& type = v.Get("t").as_string();
    LiveKey key{static_cast<uint64_t>(v.Get("i").as_int()),
                static_cast<uint32_t>(v.Get("n").as_int())};
    UserId user(static_cast<uint32_t>(v.Get("u").as_int()));
    uint64_t epoch = static_cast<uint64_t>(v.Get("e").as_int());
    Entry& e = entries[key];
    if (type == "claim" || type == "delegate") {
      e = {WorkItemState::kClaimed, user, epoch, true};
    } else if (type == "start") {
      e = {WorkItemState::kStarted, user, epoch, true};
    } else if (type == "release") {
      e = {WorkItemState::kOffered, UserId::Invalid(), 0, false};
    } else if (type == "close") {
      e = Entry{};  // claim cycle over; offers are derived, not replayed
    }
  }

  for (const auto& [key, entry] : entries) {
    if (!entry.live || !entry.user.valid()) continue;
    auto found = activity_states.find(key);
    if (found == activity_states.end()) continue;  // node/instance gone
    const ActivityState& current = found->second;
    // The epoch guard: a claim whose run already completed (its async
    // close record was lost in the crash) carries a smaller epoch than
    // the node's re-derived one — it must not steal the fresh offer of a
    // later loop iteration.
    if (entry.epoch != current.epoch) continue;
    InstanceId instance(key.first);
    NodeId node(key.second);
    if (current.state == NodeState::kActivated) {
      // The derived offer exists; attach the recovered claim to it. A
      // started entry at the same epoch means the run never made it into
      // the durable instance state: the claim survives (re-attached as
      // claimed), the start does not — the owner restarts the activity.
      size_t seg_index = SegmentOfKey(instance, node);
      ItemSegment& seg = *item_segments_[seg_index];
      std::lock_guard<std::mutex> lock(seg.mu);
      auto live = seg.live.find({key.first, key.second});
      if (live == seg.live.end()) continue;
      auto it = seg.items.find(live->second.value());
      if (it == seg.items.end() ||
          it->second.state != WorkItemState::kOffered) {
        continue;
      }
      it->second.state = WorkItemState::kClaimed;
      it->second.claimed_by = entry.user;
      IndexOfferRemove(it->second.role, it->second.id);
      IndexUserAdd(entry.user, it->second.id);
    } else if (current.state == NodeState::kRunning ||
               current.state == NodeState::kSuspended ||
               current.state == NodeState::kFailed) {
      // The activity is in flight: the owner's in-progress item survives
      // (a claimed entry whose start record was lost still owns the run).
      CreateItem(instance, node, current.role, WorkItemState::kStarted,
                 entry.user, current.epoch);
    }
    // Completed/Skipped/NotActivated: the work is over; nothing to keep.
  }
}

// --- Segmentation / item table -----------------------------------------------

size_t WorklistService::SegmentOfKey(InstanceId instance, NodeId node) const {
  uint64_t h = instance.value() * uint64_t{0x9E3779B97F4A7C15} ^
               (uint64_t{node.value()} * uint64_t{0xC2B2AE3D27D4EB4F});
  h ^= h >> 29;
  return static_cast<size_t>(h) & segment_mask_;
}

WorkItemId WorklistService::CreateItem(InstanceId instance, NodeId node,
                                       RoleId role, WorkItemState state,
                                       UserId user, uint64_t epoch) {
  size_t seg_index = SegmentOfKey(instance, node);
  ItemSegment& seg = *item_segments_[seg_index];
  std::lock_guard<std::mutex> lock(seg.mu);
  LiveKey key{instance.value(), node.value()};
  auto live = seg.live.find(key);
  if (live != seg.live.end()) return live->second;
  WorkItem item;
  item.id = WorkItemId((++seg.next_seq << segment_bits_) |
                       static_cast<uint64_t>(seg_index));
  item.instance = instance;
  item.node = node;
  item.role = role;
  item.state = state;
  item.claimed_by = user;
  item.epoch = epoch;
  seg.live.emplace(key, item.id);
  seg.items.emplace(item.id.value(), item);
  if (state == WorkItemState::kOffered) {
    IndexOfferAdd(role, item.id);
  } else if (user.valid()) {
    IndexUserAdd(user, item.id);
  }
  IndexInstanceAdd(instance, item.id);
  return item.id;
}

void WorklistService::EraseItemLocked(ItemSegment& seg, const WorkItem& item) {
  if (item.state == WorkItemState::kOffered) {
    IndexOfferRemove(item.role, item.id);
  }
  if (item.claimed_by.valid()) IndexUserRemove(item.claimed_by, item.id);
  IndexInstanceRemove(item.instance, item.id);
  if (CarriesClaim(item)) {
    JournalAsync("close", item.instance, item.node, UserId::Invalid(),
                 item.epoch);
  }
  seg.live.erase({item.instance.value(), item.node.value()});
  seg.items.erase(item.id.value());
}

// --- Index maintenance (leaf locks; called under the item's segment mu) ------

void WorklistService::IndexOfferAdd(RoleId role, WorkItemId item) {
  RoleSegment& seg =
      *role_segments_[std::hash<RoleId>()(role) & segment_mask_];
  std::lock_guard<std::mutex> lock(seg.mu);
  seg.offers[role].insert(item);
}

void WorklistService::IndexOfferRemove(RoleId role, WorkItemId item) {
  RoleSegment& seg =
      *role_segments_[std::hash<RoleId>()(role) & segment_mask_];
  std::lock_guard<std::mutex> lock(seg.mu);
  auto it = seg.offers.find(role);
  if (it == seg.offers.end()) return;
  it->second.erase(item);
  if (it->second.empty()) seg.offers.erase(it);
}

void WorklistService::IndexUserAdd(UserId user, WorkItemId item) {
  UserSegment& seg =
      *user_segments_[std::hash<UserId>()(user) & segment_mask_];
  std::lock_guard<std::mutex> lock(seg.mu);
  seg.assigned[user].insert(item);
}

void WorklistService::IndexUserRemove(UserId user, WorkItemId item) {
  UserSegment& seg =
      *user_segments_[std::hash<UserId>()(user) & segment_mask_];
  std::lock_guard<std::mutex> lock(seg.mu);
  auto it = seg.assigned.find(user);
  if (it == seg.assigned.end()) return;
  it->second.erase(item);
  if (it->second.empty()) seg.assigned.erase(it);
}

void WorklistService::IndexInstanceAdd(InstanceId instance, WorkItemId item) {
  InstanceSegment& seg =
      *instance_segments_[std::hash<InstanceId>()(instance) & segment_mask_];
  std::lock_guard<std::mutex> lock(seg.mu);
  seg.items[instance].insert(item);
}

void WorklistService::IndexInstanceRemove(InstanceId instance,
                                          WorkItemId item) {
  InstanceSegment& seg =
      *instance_segments_[std::hash<InstanceId>()(instance) & segment_mask_];
  std::lock_guard<std::mutex> lock(seg.mu);
  auto it = seg.items.find(instance);
  if (it == seg.items.end()) return;
  it->second.erase(item);
  if (it->second.empty()) seg.items.erase(it);
}

// --- Journal -----------------------------------------------------------------

namespace {
JsonValue JournalRecord(const char* type, InstanceId instance, NodeId node,
                        UserId user, uint64_t epoch) {
  JsonValue record = JsonValue::MakeObject();
  record.Set("t", JsonValue(type));
  record.Set("i", JsonValue(instance.value()));
  record.Set("n", JsonValue(node.value()));
  record.Set("u", JsonValue(user.valid() ? user.value() : 0));
  record.Set("e", JsonValue(epoch));
  return record;
}
}  // namespace

void WorklistService::JournalAsync(const char* type, InstanceId instance,
                                   NodeId node, UserId user, uint64_t epoch) {
  if (journal_ == nullptr) return;
  journal_->Enqueue(JournalRecord(type, instance, node, user, epoch));
}

uint64_t WorklistService::JournalEnqueueLocked(const char* type,
                                               InstanceId instance,
                                               NodeId node, UserId user,
                                               uint64_t epoch) {
  if (journal_ == nullptr) return 0;
  return journal_->Enqueue(JournalRecord(type, instance, node, user, epoch));
}

Status WorklistService::WaitJournal(uint64_t lsn) {
  if (journal_ == nullptr || lsn == 0) return Status::OK();
  return journal_->WaitDurable(lsn);
}

// --- Claim lifecycle ---------------------------------------------------------

Status WorklistService::Claim(WorkItemId item_id, UserId user) {
  ItemSegment& seg = *item_segments_[SegmentOfItem(item_id)];
  RoleId role;
  uint64_t lsn = 0;
  {
    std::lock_guard<std::mutex> lock(seg.mu);
    auto it = seg.items.find(item_id.value());
    if (it == seg.items.end()) return Status::NotFound("no such work item");
    WorkItem& item = it->second;
    // The compare-and-swap: exactly one concurrent claimer sees kOffered.
    if (item.state != WorkItemState::kOffered) {
      return Status::FailedPrecondition("work item is not offered");
    }
    if (!org_->UserHasRole(user, item.role)) {
      return Status::FailedPrecondition(
          "user does not hold the required role");
    }
    item.state = WorkItemState::kClaimed;
    item.claimed_by = user;
    IndexOfferRemove(item.role, item.id);
    IndexUserAdd(user, item.id);
    role = item.role;
    // Enqueued under the lock so the journal's record order for this
    // (instance, node) matches the transition order; never blocks.
    lsn = JournalEnqueueLocked("claim", item.instance, item.node, user,
                               item.epoch);
  }
  // Durability wait outside the segment lock: claims on other items (and
  // other users) proceed while the group-commit batch flushes.
  Status durable = WaitJournal(lsn);
  if (!durable.ok()) {
    // The claim was never granted: roll the in-memory state back (unless
    // an engine event already moved the item on).
    std::lock_guard<std::mutex> lock(seg.mu);
    auto it = seg.items.find(item_id.value());
    if (it != seg.items.end() &&
        it->second.state == WorkItemState::kClaimed &&
        it->second.claimed_by == user) {
      it->second.state = WorkItemState::kOffered;
      it->second.claimed_by = UserId::Invalid();
      IndexUserRemove(user, item_id);
      IndexOfferAdd(role, item_id);
    }
    return durable;
  }
  return Status::OK();
}

Status WorklistService::Release(WorkItemId item_id, UserId user) {
  ItemSegment& seg = *item_segments_[SegmentOfItem(item_id)];
  uint64_t lsn = 0;
  {
    std::lock_guard<std::mutex> lock(seg.mu);
    auto it = seg.items.find(item_id.value());
    if (it == seg.items.end()) return Status::NotFound("no such work item");
    WorkItem& item = it->second;
    if (item.state != WorkItemState::kClaimed || item.claimed_by != user) {
      return Status::FailedPrecondition("work item is not claimed by user");
    }
    item.state = WorkItemState::kOffered;
    item.claimed_by = UserId::Invalid();
    IndexUserRemove(user, item.id);
    IndexOfferAdd(item.role, item.id);
    lsn = JournalEnqueueLocked("release", item.instance, item.node);
  }
  // No rollback on journal failure: the release stands in memory; after a
  // crash the journal's last durable record wins (the user still owned
  // the claim), which only errs toward keeping work assigned.
  return WaitJournal(lsn);
}

Status WorklistService::Delegate(WorkItemId item_id, UserId from, UserId to) {
  ItemSegment& seg = *item_segments_[SegmentOfItem(item_id)];
  uint64_t lsn = 0;
  {
    std::lock_guard<std::mutex> lock(seg.mu);
    auto it = seg.items.find(item_id.value());
    if (it == seg.items.end()) return Status::NotFound("no such work item");
    WorkItem& item = it->second;
    if (item.state != WorkItemState::kClaimed || item.claimed_by != from) {
      return Status::FailedPrecondition("work item is not claimed by user");
    }
    if (!org_->UserHasRole(to, item.role)) {
      return Status::FailedPrecondition(
          "delegate does not hold the required role");
    }
    item.claimed_by = to;
    IndexUserRemove(from, item.id);
    IndexUserAdd(to, item.id);
    lsn = JournalEnqueueLocked("delegate", item.instance, item.node, to,
                               item.epoch);
  }
  return WaitJournal(lsn);
}

Status WorklistService::Start(WorkItemId item_id, UserId user) {
  ItemSegment& seg = *item_segments_[SegmentOfItem(item_id)];
  InstanceId instance;
  NodeId node;
  {
    std::lock_guard<std::mutex> lock(seg.mu);
    auto it = seg.items.find(item_id.value());
    if (it == seg.items.end()) return Status::NotFound("no such work item");
    const WorkItem& item = it->second;
    if (item.state != WorkItemState::kClaimed || item.claimed_by != user) {
      return Status::FailedPrecondition("claim the work item first");
    }
    instance = item.instance;
    node = item.node;
  }
  // The engine turn runs under the owner shard's lock; its Activated ->
  // Running event (same lock) marks the item started and journals it.
  return api_->StartActivity(instance, node);
}

Status WorklistService::Complete(
    WorkItemId item_id, UserId user,
    const std::vector<ProcessInstance::DataWrite>& writes) {
  ItemSegment& seg = *item_segments_[SegmentOfItem(item_id)];
  InstanceId instance;
  NodeId node;
  {
    std::lock_guard<std::mutex> lock(seg.mu);
    auto it = seg.items.find(item_id.value());
    if (it == seg.items.end()) return Status::NotFound("no such work item");
    const WorkItem& item = it->second;
    if (item.state != WorkItemState::kStarted || item.claimed_by != user) {
      return Status::FailedPrecondition("work item is not started by user");
    }
    instance = item.instance;
    node = item.node;
  }
  return api_->CompleteActivity(instance, node, writes);
}

// --- Views -------------------------------------------------------------------

std::vector<WorkItem> WorklistService::SnapshotItems(
    const std::set<WorkItemId>& ids,
    const std::function<bool(const WorkItem&)>& keep) const {
  std::vector<WorkItem> out;
  for (WorkItemId id : ids) {
    const ItemSegment& seg = *item_segments_[SegmentOfItem(id)];
    std::lock_guard<std::mutex> lock(seg.mu);
    auto it = seg.items.find(id.value());
    if (it != seg.items.end() && keep(it->second)) out.push_back(it->second);
  }
  return out;
}

std::vector<WorkItem> WorklistService::OffersFor(UserId user) const {
  return OffersForImpl(user, nullptr);
}

Result<std::vector<WorkItem>> WorklistService::OffersFor(
    UserId user, const std::string& predicate) const {
  ADEPT_ASSIGN_OR_RETURN(CompiledQuery compiled,
                         CompiledQuery::Compile(predicate));
  return OffersForImpl(user, &compiled);
}

std::vector<WorkItem> WorklistService::OffersForImpl(
    UserId user, const CompiledQuery* predicate) const {
  std::set<WorkItemId> candidates;
  for (RoleId role : org_->RolesOf(user)) {
    const RoleSegment& seg =
        *role_segments_[std::hash<RoleId>()(role) & segment_mask_];
    std::lock_guard<std::mutex> lock(seg.mu);
    auto it = seg.offers.find(role);
    if (it == seg.offers.end()) continue;
    candidates.insert(it->second.begin(), it->second.end());
  }
  // The index is advisory (it may trail a concurrent claim by a moment);
  // the item table is the truth, so re-check the state per item.
  std::vector<WorkItem> items =
      SnapshotItems(candidates, [](const WorkItem& item) {
        return item.state == WorkItemState::kOffered;
      });
  // Revalidate hits against the engine's published snapshots — the
  // lock-free read path, so the hottest worklist query never takes a
  // shard mutex. An offer whose node is no longer Activated, or whose
  // activation epoch belongs to an earlier loop iteration, is stale
  // (the retraction event will erase it momentarily); conversely a
  // snapshot that trails an in-flight mutation can only *hide* an offer
  // for one poll, never surface a wrong one. No snapshot (instance
  // mid-move during a resize) keeps the item — except under a predicate,
  // which has nothing to evaluate against and drops it for this poll.
  // The predicate reuses the snapshot this pass already fetched, so the
  // filtered view costs zero extra locks or lookups.
  std::vector<WorkItem> offers;
  offers.reserve(items.size());
  for (WorkItem& item : items) {
    std::shared_ptr<const InstanceSnapshot> snapshot =
        api_->SnapshotOf(item.instance);
    if (snapshot != nullptr) {
      if (snapshot->marking.node(item.node) != NodeState::kActivated) {
        continue;
      }
      const uint64_t* runs = snapshot->completed_runs.Find(item.node);
      uint64_t epoch = runs == nullptr ? 0 : *runs;
      if (epoch != item.epoch) continue;
      if (predicate != nullptr && !predicate->Matches(*snapshot)) continue;
    } else if (predicate != nullptr) {
      continue;
    }
    offers.push_back(std::move(item));
  }
  return offers;
}

std::vector<WorkItem> WorklistService::AssignedTo(UserId user) const {
  std::set<WorkItemId> candidates;
  {
    const UserSegment& seg =
        *user_segments_[std::hash<UserId>()(user) & segment_mask_];
    std::lock_guard<std::mutex> lock(seg.mu);
    auto it = seg.assigned.find(user);
    if (it != seg.assigned.end()) candidates = it->second;
  }
  return SnapshotItems(candidates, [user](const WorkItem& item) {
    return item.claimed_by == user &&
           (item.state == WorkItemState::kClaimed ||
            item.state == WorkItemState::kStarted);
  });
}

Result<WorkItem> WorklistService::Get(WorkItemId item_id) const {
  const ItemSegment& seg = *item_segments_[SegmentOfItem(item_id)];
  std::lock_guard<std::mutex> lock(seg.mu);
  auto it = seg.items.find(item_id.value());
  if (it == seg.items.end()) return Status::NotFound("no such work item");
  return it->second;
}

WorklistStats WorklistService::Stats() const {
  WorklistStats stats;
  for (const auto& seg_ptr : item_segments_) {
    const ItemSegment& seg = *seg_ptr;
    std::lock_guard<std::mutex> lock(seg.mu);
    for (const auto& [_, item] : seg.items) {
      switch (item.state) {
        case WorkItemState::kOffered:
          ++stats.offered;
          break;
        case WorkItemState::kClaimed:
          ++stats.claimed;
          break;
        case WorkItemState::kStarted:
          ++stats.started;
          break;
        case WorkItemState::kRevoked:
          break;
      }
    }
  }
  stats.revoked_total = revoked_total_.load(std::memory_order_relaxed);
  stats.completed_total = completed_total_.load(std::memory_order_relaxed);
  return stats;
}

// --- Checkpointing -----------------------------------------------------------

Status WorklistService::CompactJournal() {
  if (journal_ == nullptr) return Status::OK();
  // Quiesce the claim lifecycle: with every segment lock held no journal
  // record can be enqueued (all enqueues run under an item's segment
  // lock), so the live-claim sweep and the rewrite see the same state.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(item_segments_.size());
  for (auto& seg : item_segments_) locks.emplace_back(seg->mu);
  std::vector<JsonValue> records;
  for (const auto& seg : item_segments_) {
    for (const auto& [_, item] : seg->items) {
      if (!CarriesClaim(item)) continue;
      records.push_back(JournalRecord(
          item.state == WorkItemState::kStarted ? "start" : "claim",
          item.instance, item.node, item.claimed_by, item.epoch));
    }
  }
  return journal_->Rewrite(records);
}

// --- Event subscription ------------------------------------------------------

void WorklistService::OnNodeStateChange(const ProcessInstance& instance,
                                        NodeId node, NodeState from,
                                        NodeState to) {
  if (to == NodeState::kActivated && from != NodeState::kActivated) {
    const Node* n = OfferableActivity(instance.schema(), node);
    if (n == nullptr) return;
    CreateItem(instance.id(), node, n->role, WorkItemState::kOffered,
               UserId::Invalid(), ActivationEpoch(instance, node));
    return;
  }

  ItemSegment& seg = *item_segments_[SegmentOfKey(instance.id(), node)];
  std::lock_guard<std::mutex> lock(seg.mu);
  auto live = seg.live.find({instance.id().value(), node.value()});
  if (live == seg.live.end()) return;
  auto it = seg.items.find(live->second.value());
  if (it == seg.items.end()) return;
  WorkItem& item = it->second;

  if (to == NodeState::kRunning && from == NodeState::kActivated) {
    if (item.state == WorkItemState::kClaimed) {
      // The claimer (or a delegate) started the activity: their item
      // moves to started and stays on their assignment list.
      item.state = WorkItemState::kStarted;
      JournalAsync("start", item.instance, item.node, item.claimed_by,
                   item.epoch);
    } else if (item.state == WorkItemState::kOffered) {
      // Started directly through the engine without a claim: the offer
      // simply closes (no claim ledger entry to cancel).
      EraseItemLocked(seg, item);
    }
    return;
  }
  if (to == NodeState::kRunning || to == NodeState::kSuspended ||
      to == NodeState::kFailed) {
    return;  // retry/suspend/resume keep the owner's in-progress item
  }
  if (to == NodeState::kCompleted) {
    if (item.state == WorkItemState::kStarted ||
        item.state == WorkItemState::kClaimed) {
      completed_total_.fetch_add(1, std::memory_order_relaxed);
    }
    EraseItemLocked(seg, item);
    return;
  }
  // NotActivated / Skipped (ad-hoc deletion, demotion, dead path, loop
  // reset): retract the item — offered or claimed, exactly once.
  revoked_total_.fetch_add(1, std::memory_order_relaxed);
  EraseItemLocked(seg, item);
}

// --- Adaptation hooks --------------------------------------------------------

void WorklistService::ResyncAfterMigration(
    const InstanceEnumerator& instances) {
  instances([&](const ProcessInstance& instance) {
    // Snapshot this instance's items (instance-index lock is a leaf; do
    // not hold it while touching segments).
    std::set<WorkItemId> ids;
    {
      InstanceSegment& iseg = *instance_segments_[
          std::hash<InstanceId>()(instance.id()) & segment_mask_];
      std::lock_guard<std::mutex> lock(iseg.mu);
      auto found = iseg.items.find(instance.id());
      if (found != iseg.items.end()) ids = found->second;
    }
    for (WorkItemId id : ids) {
      ItemSegment& seg = *item_segments_[SegmentOfItem(id)];
      std::lock_guard<std::mutex> lock(seg.mu);
      auto it = seg.items.find(id.value());
      if (it == seg.items.end()) continue;
      WorkItem& item = it->second;
      if (item.instance != instance.id()) continue;
      const Node* n = instance.schema().FindNode(item.node);
      NodeState state = n == nullptr ? NodeState::kNotActivated
                                     : instance.node_state(item.node);
      bool ok;
      switch (item.state) {
        case WorkItemState::kOffered:
          ok = state == NodeState::kActivated;
          break;
        case WorkItemState::kClaimed:
          // A claimed item whose node is already Running was started by
          // its owner concurrently; promote instead of revoking.
          if (state == NodeState::kRunning) {
            item.state = WorkItemState::kStarted;
            JournalAsync("start", item.instance, item.node, item.claimed_by,
                         item.epoch);
            ok = true;
          } else {
            ok = state == NodeState::kActivated;
          }
          break;
        case WorkItemState::kStarted:
          ok = state == NodeState::kRunning ||
               state == NodeState::kSuspended || state == NodeState::kFailed;
          break;
        default:
          ok = false;
          break;
      }
      if (!ok) {
        revoked_total_.fetch_add(1, std::memory_order_relaxed);
        EraseItemLocked(seg, item);
      }
    }
    // Offer Activated role activities the remap left without an item.
    for (const auto& [node, state] : instance.marking().node_states()) {
      if (state != NodeState::kActivated) continue;
      const Node* n = OfferableActivity(instance.schema(), node);
      if (n == nullptr) continue;
      CreateItem(instance.id(), node, n->role, WorkItemState::kOffered,
                 UserId::Invalid(), ActivationEpoch(instance, node));
    }
  });
}

}  // namespace adept
