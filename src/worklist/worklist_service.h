// WorklistService: cluster-wide concurrent task distribution.
//
// The per-shard WorklistManager (org/worklist.h) is a single-threaded toy
// bound to one AdeptSystem; this service is the scale-out counterpart: it
// subscribes to instance events across every shard of an AdeptCluster and
// serves worklists to many concurrent actors. The paper's promise — all
// adaptation complexity "is hidden from users", who only ever see a
// consistent worklist — survives ad-hoc deletion, migration demotion, and
// bias-cancellation remaps because every retraction path funnels through
// the same item table.
//
// Lifecycle (see README.md for the full state machine):
//
//   Offer   node enters Activated with a staff-assignment role
//   Claim   one user reserves the offer (exactly-once: compare-and-swap
//           under the item's segment lock; losers get kFailedPrecondition)
//   Start   the claimer starts the activity through the cluster facade —
//           the engine event (under the owner shard's lock) flips the item
//   Complete / Release (back to offered) / Delegate (new owner)
//   Revoke  skip, deletion, demotion, or a migration that removed the
//           node retracts offered *and* claimed items
//
// Concurrency: the item table is internally sharded — items are hashed by
// (instance, node) into segments with one mutex each, and the segment
// index is encoded in the WorkItemId, so claims on unrelated items (and
// thus on different users) never contend. Per-role offer indexes and
// per-user assignment indexes are sharded the same way; OffersFor reads
// the role index instead of scanning the item table. Lock order:
// shard.mu (cluster) -> item segment mu -> index mu; index mutexes are
// leaves and never held while acquiring a segment.
//
// Durability: claim-lifecycle transitions (claim/start/release/delegate/
// close) are framed through a group-commit WalWriter ("<wal>.worklist").
// Claim() waits for its journal record to be durable before granting the
// claim (a granted claim survives a crash); transitions driven by engine
// events only enqueue (a crash may demote a just-started item back to
// claimed — never lose the owner). Offers carry no journal records: they
// are re-derived from recovered instance state, and Recover() then replays
// the compact claim journal on top (see Recover()). Claim records carry
// the item's activation epoch (completed runs of the node at offer time),
// so a claim whose async close record was lost in a crash can never be
// re-attached to a later loop iteration's fresh offer.
//
// The OrgModel is read under the service's locks but is not itself
// synchronized: populate users/roles before serving concurrent traffic.

#ifndef ADEPT_WORKLIST_WORKLIST_SERVICE_H_
#define ADEPT_WORKLIST_WORKLIST_SERVICE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "core/adept_api.h"
#include "org/org_model.h"
#include "org/worklist.h"
#include "runtime/events.h"
#include "runtime/instance.h"
#include "storage/wal.h"
#include "storage/wal_writer.h"

namespace adept {

struct WorklistServiceOptions {
  // Claim journal path; empty disables durability (claims die with the
  // process).
  std::string journal_path;
  // Durability level of the journal's group-commit writer.
  SyncMode sync = SyncMode::kFlush;
  // Internal segment count (rounded up to a power of two). More segments
  // = less contention between claims on unrelated items.
  int segments = 16;
};

struct WorklistStats {
  size_t offered = 0;
  size_t claimed = 0;
  size_t started = 0;
  size_t revoked_total = 0;    // lifetime retractions
  size_t completed_total = 0;  // lifetime completions
};

class WorklistService : public InstanceObserver {
 public:
  // Visits every live instance (the cluster implements this by locking
  // one shard at a time).
  using InstanceVisitor = std::function<void(const ProcessInstance&)>;
  using InstanceEnumerator = std::function<void(const InstanceVisitor&)>;

  // Fresh service: truncates any existing journal at the configured path.
  // `api` routes Start/Complete to wherever the instance lives; `org`
  // answers role-membership checks. Both must outlive the service.
  static Result<std::unique_ptr<WorklistService>> Create(
      const OrgModel* org, AdeptApi* api,
      const WorklistServiceOptions& options = {});

  // Rebuilds open work items after a crash: offers are derived from the
  // recovered instance state (`instances`), then the claim journal is
  // replayed on top — a claimed item resurfaces claimed by its owner, a
  // started item re-attaches to its Running node. The journal file is
  // parsed exactly once (the same scan seeds the reopened writer). The
  // caller attaches the returned service as an observer afterwards.
  static Result<std::unique_ptr<WorklistService>> Recover(
      const OrgModel* org, AdeptApi* api,
      const WorklistServiceOptions& options,
      const InstanceEnumerator& instances);

  ~WorklistService() override;
  WorklistService(const WorklistService&) = delete;
  WorklistService& operator=(const WorklistService&) = delete;

  // --- Claim lifecycle ------------------------------------------------------

  // Reserves an offered item for `user`. Exactly-once under concurrent
  // claimers: the state transition is a compare-and-swap under the item's
  // segment lock — exactly one caller wins, the rest get
  // kFailedPrecondition. kNotFound for unknown (or revoked-and-dropped)
  // items. The claim is durable (per the journal's SyncMode) when this
  // returns OK.
  Status Claim(WorkItemId item, UserId user);

  // Returns a claimed (not yet started) item to the offered pool.
  Status Release(WorkItemId item, UserId user);

  // Hands a claimed item from `from` to `to` (who must hold the role).
  Status Delegate(WorkItemId item, UserId from, UserId to);

  // Starts the claimed item's activity through the cluster facade; the
  // engine event (under the owner shard's lock) marks the item started.
  Status Start(WorkItemId item, UserId user);

  // Completes the started item's activity through the cluster facade.
  Status Complete(WorkItemId item, UserId user,
                  const std::vector<ProcessInstance::DataWrite>& writes = {});

  // --- Views ----------------------------------------------------------------

  // Items currently offered to `user` (union of the offer indexes of the
  // user's roles — no full-table scan).
  std::vector<WorkItem> OffersFor(UserId user) const;

  // Same, filtered by a query predicate (grammar: src/query/README.md)
  // evaluated against each offer's published instance snapshot during the
  // existing revalidation pass — no extra locks, no extra snapshot
  // fetches. E.g. OffersFor(nurse, "data.priority >= 3"). An offer whose
  // instance has no published snapshot this poll (mid-move during a
  // resize) is dropped from the filtered view — there is nothing to
  // evaluate the predicate against; it resurfaces next poll. Returns
  // kInvalidArgument (offset + caret span) on a malformed predicate.
  Result<std::vector<WorkItem>> OffersFor(UserId user,
                                          const std::string& predicate) const;

  // Items currently claimed or started by `user`.
  std::vector<WorkItem> AssignedTo(UserId user) const;

  Result<WorkItem> Get(WorkItemId item) const;

  WorklistStats Stats() const;

  // --- Checkpointing --------------------------------------------------------

  // Rewrites the claim journal as one record per live claim (claimed →
  // "claim", started → "start"), bounding the file at O(live claims)
  // instead of O(total claim history). Runs under quiescence — every item
  // segment lock is held — and swaps the file atomically (temp + rename),
  // so a crash mid-compaction keeps the full journal. AdeptCluster calls
  // this from SaveSnapshot(); safe (and a no-op) without a journal.
  Status CompactJournal();

  // --- Adaptation hooks -----------------------------------------------------

  // Reconciles the worklist with engine truth after a migration fan-out:
  // revokes live items whose node vanished from the (possibly remapped)
  // schema or is no longer Activated/Running, and offers Activated
  // role-carrying activities without a live item. Runs per instance under
  // that instance's shard lock (via `instances`), so it is exact even
  // with concurrent traffic.
  void ResyncAfterMigration(const InstanceEnumerator& instances);

  // InstanceObserver (called under the owning shard's lock):
  void OnNodeStateChange(const ProcessInstance& instance, NodeId node,
                         NodeState from, NodeState to) override;

 private:
  using LiveKey = std::pair<uint64_t, uint32_t>;  // (instance, node)

  struct ItemSegment {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, WorkItem> items;  // by WorkItemId value
    std::map<LiveKey, WorkItemId> live;            // live item per (i, n)
    uint64_t next_seq = 0;
  };
  struct RoleSegment {
    mutable std::mutex mu;
    std::unordered_map<RoleId, std::set<WorkItemId>> offers;
  };
  struct UserSegment {
    mutable std::mutex mu;
    std::unordered_map<UserId, std::set<WorkItemId>> assigned;
  };
  struct InstanceSegment {
    mutable std::mutex mu;
    std::unordered_map<InstanceId, std::set<WorkItemId>> items;
  };

  WorklistService(const OrgModel* org, AdeptApi* api,
                  const WorklistServiceOptions& options);

  Status OpenJournal(bool fresh, const WalScan* prescan);

  size_t SegmentOfKey(InstanceId instance, NodeId node) const;
  size_t SegmentOfItem(WorkItemId item) const {
    return static_cast<size_t>(item.value()) & segment_mask_;
  }

  // Creates an item in `state` (segment lock must NOT be held). Updates
  // the role (offered only), user (claimed/started only), and instance
  // indexes. `epoch` is the node's activation epoch (completed runs at
  // offer time); journaled with claims so replay never attaches a stale
  // claim to a later loop iteration's offer. Returns the new id, or the
  // existing live item's id.
  WorkItemId CreateItem(InstanceId instance, NodeId node, RoleId role,
                        WorkItemState state, UserId user, uint64_t epoch);

  // Erases `item` from its segment and all indexes; `seg.mu` must be
  // held. Journals a close record when the item carried a claim.
  void EraseItemLocked(ItemSegment& seg, const WorkItem& item);

  void IndexOfferAdd(RoleId role, WorkItemId item);
  void IndexOfferRemove(RoleId role, WorkItemId item);
  void IndexUserAdd(UserId user, WorkItemId item);
  void IndexUserRemove(UserId user, WorkItemId item);
  void IndexInstanceAdd(InstanceId instance, WorkItemId item);
  void IndexInstanceRemove(InstanceId instance, WorkItemId item);

  // Fire-and-forget journal append (engine-event transitions). Like
  // every journal enqueue, it must run under the item's segment lock so
  // the journal's per-(instance, node) record order matches the real
  // transition order — replay keeps the last record per key, so an
  // inversion would let a stale release/close overwrite a durably
  // granted claim.
  void JournalAsync(const char* type, InstanceId instance, NodeId node,
                    UserId user = UserId::Invalid(), uint64_t epoch = 0);
  // Enqueues a record (segment lock held) and returns its LSN ticket
  // (0 when no journal is configured); callers WaitJournal() outside the
  // lock so the group-commit flush never blocks other claims.
  uint64_t JournalEnqueueLocked(const char* type, InstanceId instance,
                                NodeId node, UserId user = UserId::Invalid(),
                                uint64_t epoch = 0);
  Status WaitJournal(uint64_t lsn);

  // Copies the items named by `ids`, keeping those that satisfy `keep`.
  std::vector<WorkItem> SnapshotItems(
      const std::set<WorkItemId>& ids,
      const std::function<bool(const WorkItem&)>& keep) const;

  // Shared body of both OffersFor overloads: role-index union, item-table
  // recheck, snapshot revalidation, and (when `predicate` is non-null)
  // predicate evaluation against the same snapshot.
  std::vector<WorkItem> OffersForImpl(UserId user,
                                      const CompiledQuery* predicate) const;

  // Recovery: replays the scanned journal onto freshly derived offers.
  struct ActivityState {
    NodeState state = NodeState::kNotActivated;
    RoleId role;
    uint64_t epoch = 0;  // completed runs per the recovered trace
  };
  void ReplayJournal(
      const std::vector<WalRecord>& records,
      const std::map<LiveKey, ActivityState>& activity_states);

  const OrgModel* org_;
  AdeptApi* api_;
  WorklistServiceOptions options_;
  size_t segment_mask_ = 0;   // segment count - 1 (power of two)
  size_t segment_bits_ = 0;   // id = (seq << bits) | segment
  std::vector<std::unique_ptr<ItemSegment>> item_segments_;
  std::vector<std::unique_ptr<RoleSegment>> role_segments_;
  std::vector<std::unique_ptr<UserSegment>> user_segments_;
  std::vector<std::unique_ptr<InstanceSegment>> instance_segments_;
  std::unique_ptr<WalWriter> journal_;
  std::atomic<size_t> revoked_total_{0};
  std::atomic<size_t> completed_total_{0};
};

}  // namespace adept

#endif  // ADEPT_WORKLIST_WORKLIST_SERVICE_H_
