#include "net/transport.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/string_util.h"

#if defined(__unix__) || defined(__APPLE__)
#define ADEPT_NET_POSIX 1
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>
#endif

namespace adept {

namespace {

constexpr uint32_t kFrameMagic = 0xADE2F4A3;
constexpr size_t kHeaderBytes = 4 + 4 + 4 + 8;

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t GetU32(const unsigned char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

uint64_t GetU64(const unsigned char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

uint64_t NetChecksum(const std::string& data) {
  // FNV-1a 64: cheap, byte-order independent, and good enough to catch the
  // torn/bit-flipped frames this layer defends against (not an
  // authenticator).
  uint64_t h = 0xcbf29ce484222325ull;  // offset basis
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001b3ull;  // FNV prime
  }
  return h;
}

FaultInjector::Action ScriptedFaultInjector::OnSendFrame(uint64_t frame_index,
                                                         uint32_t frame_type,
                                                         size_t frame_bytes,
                                                         size_t* truncate_to) {
  (void)frame_type;
  (void)frame_bytes;
  frames_seen_.fetch_add(1, std::memory_order_relaxed);
  auto it = plan_.find(frame_index);
  if (it == plan_.end()) return Action::kPass;
  if (it->second.action == Action::kTruncate) {
    *truncate_to = it->second.truncate_to;
  }
  return it->second.action;
}

FaultInjector::Action ToggleFaultInjector::OnSendFrame(uint64_t frame_index,
                                                       uint32_t frame_type,
                                                       size_t frame_bytes,
                                                       size_t* truncate_to) {
  (void)frame_index;
  (void)frame_bytes;
  (void)truncate_to;
  frames_seen_.fetch_add(1, std::memory_order_relaxed);
  if (!enabled_.load(std::memory_order_acquire)) return Action::kPass;
  if (has_filter_ && frame_type != filter_type_) return Action::kPass;
  frames_dropped_.fetch_add(1, std::memory_order_relaxed);
  return Action::kDrop;
}

#if defined(ADEPT_NET_POSIX)

namespace {

Status SocketError(const char* what) {
  return Status::Unavailable(StrFormat("%s: %s", what, std::strerror(errno)));
}

// Waits for `events` on `fd` up to timeout_ms. OK = ready; kUnavailable on
// timeout or poll failure.
Status PollFor(int fd, short events, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  for (;;) {
    int rc = poll(&pfd, 1, timeout_ms);
    if (rc > 0) return Status::OK();
    if (rc == 0) return Status::Unavailable("socket timeout");
    if (errno == EINTR) continue;
    return SocketError("poll");
  }
}

// Reads exactly `n` bytes, applying `timeout_ms` to every individual wait.
// *eof is set when the stream ended (peer closed / reset) — as opposed to
// a timeout — so callers can tell "try again later" from "dead".
Status RecvExact(int fd, void* buf, size_t n, int timeout_ms, bool* eof) {
  char* out = static_cast<char*>(buf);
  size_t got = 0;
  while (got < n) {
    ADEPT_RETURN_IF_ERROR(PollFor(fd, POLLIN, timeout_ms));
    ssize_t rc = recv(fd, out + got, n - got, 0);
    if (rc > 0) {
      got += static_cast<size_t>(rc);
      continue;
    }
    if (rc == 0) {
      *eof = true;
      return Status::Unavailable("peer closed the connection");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) continue;  // poll raced
    *eof = true;
    return SocketError("recv");
  }
  return Status::OK();
}

// Writes exactly `n` bytes with SO_SNDTIMEO armed by the caller.
Status SendExact(int fd, const char* data, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    ssize_t rc = send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<size_t>(rc);
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // SO_SNDTIMEO expired: the peer's socket buffer stayed full for the
      // whole write timeout — a slow or wedged replica.
      return Status::Unavailable("send timeout (slow peer)");
    }
    return SocketError("send");
  }
  return Status::OK();
}

void ConfigureStreamSocket(int fd) {
  int one = 1;
  // Replication sends small latency-sensitive batches; Nagle would add
  // 40ms-class delays to every quorum ack.
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void ArmSendTimeout(int fd, int timeout_ms) {
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

Result<struct sockaddr_in> ResolveV4(const NetEndpoint& endpoint) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  // Numeric IPv4 only — this transport serves loopback clusters and
  // explicitly configured peers, not service discovery.
  if (inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: '" +
                                   endpoint.host + "'");
  }
  return addr;
}

}  // namespace

Result<std::unique_ptr<TcpConnection>> TcpConnection::Dial(
    const NetEndpoint& endpoint, int timeout_ms) {
  ADEPT_ASSIGN_OR_RETURN(struct sockaddr_in addr, ResolveV4(endpoint));
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return SocketError("socket");
  // Non-blocking connect so the timeout applies to the handshake, then
  // back to blocking (reads use poll, writes use SO_SNDTIMEO).
  int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    Status st = SocketError("connect");
    close(fd);
    return st;
  }
  if (rc != 0) {
    Status ready = PollFor(fd, POLLOUT, timeout_ms);
    if (!ready.ok()) {
      close(fd);
      return Status::Unavailable("connect timeout to " + endpoint.host + ":" +
                                 std::to_string(endpoint.port));
    }
    int err = 0;
    socklen_t len = sizeof(err);
    getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      close(fd);
      return Status::Unavailable(
          StrFormat("connect to %s:%u failed: %s", endpoint.host.c_str(),
                    unsigned{endpoint.port}, std::strerror(err)));
    }
  }
  fcntl(fd, F_SETFL, flags);
  ConfigureStreamSocket(fd);
  return std::unique_ptr<TcpConnection>(new TcpConnection(fd));
}

TcpConnection::~TcpConnection() {
  Close();
  int fd = fd_.load(std::memory_order_acquire);
  // The fd number is released only here, never in Close(): a reader still
  // blocked on the socket when Close() ran must not see the number reused
  // by an unrelated descriptor.
  if (fd >= 0) close(fd);
}

void TcpConnection::Close() {
  if (!closed_.exchange(true, std::memory_order_acq_rel)) {
    int fd = fd_.load(std::memory_order_acquire);
    // Wakes any thread blocked in poll/recv with POLLHUP / EOF.
    if (fd >= 0) shutdown(fd, SHUT_RDWR);
  }
}

Status TcpConnection::SendFrame(uint32_t type, const std::string& payload) {
  if (closed_.load(std::memory_order_acquire)) {
    return Status::Unavailable("connection is closed");
  }
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument(
        StrFormat("frame payload of %zu bytes exceeds the %u-byte cap",
                  payload.size(), kMaxFramePayload));
  }
  std::string frame;
  frame.reserve(kHeaderBytes + payload.size());
  PutU32(&frame, kFrameMagic);
  PutU32(&frame, type);
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU64(&frame, NetChecksum(payload));
  frame += payload;

  size_t limit = frame.size();
  if (injector_ != nullptr) {
    const uint64_t index =
        frames_sent_.fetch_add(1, std::memory_order_relaxed);
    size_t truncate_to = 0;
    switch (injector_->OnSendFrame(index, type, frame.size(), &truncate_to)) {
      case FaultInjector::Action::kPass:
        break;
      case FaultInjector::Action::kDrop:
        // The frame vanishes "on the wire"; the sender believes it went
        // out and discovers the loss via ack/read timeouts.
        return Status::OK();
      case FaultInjector::Action::kTruncate:
        limit = std::min(truncate_to, frame.size() - 1);
        break;
      case FaultInjector::Action::kDisconnect:
        Close();
        return Status::Unavailable("fault injection: disconnect");
    }
  }

  int fd = fd_.load(std::memory_order_acquire);
  ArmSendTimeout(fd, write_timeout_ms_);
  Status st = SendExact(fd, frame.data(), limit);
  if (limit < frame.size()) {
    // Injected truncation: the peer got a torn frame; this side's stream
    // position is now mid-frame, so the connection dies with it.
    Close();
    return Status::Unavailable("fault injection: truncated frame");
  }
  if (!st.ok()) Close();
  return st;
}

Result<NetFrame> TcpConnection::ReadFrame(int timeout_ms) {
  if (closed_.load(std::memory_order_acquire)) {
    return Status::Unavailable("connection is closed");
  }
  int fd = fd_.load(std::memory_order_acquire);
  bool eof = false;
  unsigned char header[kHeaderBytes];
  Status st = RecvExact(fd, header, sizeof(header), timeout_ms, &eof);
  if (!st.ok()) {
    // A dead stream closes the connection, so pollers (the replica's
    // session loop) observe closed() instead of spinning on instant EOFs.
    if (eof) Close();
    return st;
  }
  if (GetU32(header) != kFrameMagic) {
    return Status::Corruption("bad frame magic (stream out of sync)");
  }
  NetFrame result;
  result.type = GetU32(header + 4);
  const uint32_t length = GetU32(header + 8);
  const uint64_t checksum = GetU64(header + 12);
  if (length > kMaxFramePayload) {
    return Status::Corruption(
        StrFormat("frame length %u exceeds the %u-byte cap", length,
                  kMaxFramePayload));
  }
  result.payload.resize(length);
  if (length > 0) {
    st = RecvExact(fd, &result.payload[0], length, timeout_ms, &eof);
    if (!st.ok()) {
      if (eof) Close();
      return st;
    }
  }
  if (NetChecksum(result.payload) != checksum) {
    return Status::Corruption("frame checksum mismatch");
  }
  return result;
}

Result<std::unique_ptr<TcpListener>> TcpListener::Bind(
    const NetEndpoint& endpoint) {
  ADEPT_ASSIGN_OR_RETURN(struct sockaddr_in addr, ResolveV4(endpoint));
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return SocketError("socket");
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = SocketError("bind");
    close(fd);
    return st;
  }
  if (listen(fd, 64) != 0) {
    Status st = SocketError("listen");
    close(fd);
    return st;
  }
  struct sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound), &len) != 0) {
    Status st = SocketError("getsockname");
    close(fd);
    return st;
  }
  return std::unique_ptr<TcpListener>(
      new TcpListener(fd, ntohs(bound.sin_port)));
}

TcpListener::~TcpListener() {
  Close();
  int fd = fd_.load(std::memory_order_acquire);
  if (fd >= 0) close(fd);
}

void TcpListener::Close() {
  if (!closed_.exchange(true, std::memory_order_acq_rel)) {
    int fd = fd_.load(std::memory_order_acquire);
    // shutdown() on a listening socket reliably wakes a blocked accept on
    // Linux; the poll loop in Accept also rechecks closed_ each timeout.
    if (fd >= 0) shutdown(fd, SHUT_RDWR);
  }
}

Result<std::unique_ptr<TcpConnection>> TcpListener::Accept(int timeout_ms) {
  for (;;) {
    if (closed_.load(std::memory_order_acquire)) {
      return Status::Unavailable("listener is closed");
    }
    int fd = fd_.load(std::memory_order_acquire);
    ADEPT_RETURN_IF_ERROR(PollFor(fd, POLLIN, timeout_ms));
    if (closed_.load(std::memory_order_acquire)) {
      return Status::Unavailable("listener is closed");
    }
    int peer = accept(fd, nullptr, nullptr);
    if (peer < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return SocketError("accept");
    }
    ConfigureStreamSocket(peer);
    auto conn = std::unique_ptr<TcpConnection>(new TcpConnection(peer));
    conn->set_fault_injector(injector_);
    return conn;
  }
}

#else  // !ADEPT_NET_POSIX

namespace {
Status NoSockets() {
  return Status::Unimplemented("TCP transport requires POSIX sockets");
}
}  // namespace

Result<std::unique_ptr<TcpConnection>> TcpConnection::Dial(const NetEndpoint&,
                                                           int) {
  return NoSockets();
}
TcpConnection::~TcpConnection() = default;
void TcpConnection::Close() { closed_.store(true); }
Status TcpConnection::SendFrame(uint32_t, const std::string&) {
  return NoSockets();
}
Result<NetFrame> TcpConnection::ReadFrame(int) { return NoSockets(); }

Result<std::unique_ptr<TcpListener>> TcpListener::Bind(const NetEndpoint&) {
  return NoSockets();
}
TcpListener::~TcpListener() = default;
void TcpListener::Close() { closed_.store(true); }
Result<std::unique_ptr<TcpConnection>> TcpListener::Accept(int) {
  return NoSockets();
}

#endif  // ADEPT_NET_POSIX

}  // namespace adept
