// Minimal length-prefixed TCP transport for the replication layer.
//
// The unit of exchange is a *frame*:
//
//   [4B magic][4B type][4B payload length][8B FNV-1a checksum][payload]
//
// All header fields are little-endian, packed byte-by-byte (portable
// across hosts of either endianness). The payload length is capped
// (kMaxFramePayload) so a forged or corrupted header can never drive a
// giant allocation, and the checksum covers the payload so a torn or
// bit-flipped frame surfaces as kCorruption instead of garbage reaching
// the replication state machine.
//
// Blocking with per-call timeouts: ReadFrame(timeout_ms) returns
// kUnavailable on timeout or a cleanly closed peer, kCorruption on a
// malformed frame (after which the connection must be closed — the stream
// position is unrecoverable). SendFrame applies the connection's write
// timeout. Both directions are safe from one thread each (one reader, one
// writer); a single thread doing both (the replication session loops) is
// the intended use.
//
// Fault injection: tests attach a FaultInjector to a connection (or to a
// listener, which stamps it onto every accepted connection). The injector
// is consulted once per *outgoing* frame with a monotonically increasing
// per-injector frame index, and can pass, drop (pretend success), truncate
// (write a prefix, then kill the connection), or disconnect (kill before
// writing). Because the index is global to the injector and sends are
// serialized per connection, a scripted plan replays deterministically.
//
// POSIX sockets only; on other platforms every entry point returns
// kUnimplemented.

#ifndef ADEPT_NET_TRANSPORT_H_
#define ADEPT_NET_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/status.h"

namespace adept {

// Upper bound on a single frame payload. Far above the largest WAL batch
// the replication layer sends, far below anything that could OOM a node.
constexpr uint32_t kMaxFramePayload = 64u << 20;  // 64 MiB

// FNV-1a 64-bit over `data`; the frame checksum.
uint64_t NetChecksum(const std::string& data);

struct NetEndpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral (Bind picks; port() reports)
};

// One decoded frame.
struct NetFrame {
  uint32_t type = 0;
  std::string payload;
};

// Deterministic in-process fault hook; see the header comment. Injectors
// outlive every connection they are attached to. OnSendFrame may be called
// from multiple peer threads; implementations must be thread-safe.
class FaultInjector {
 public:
  enum class Action {
    kPass,        // deliver the frame normally
    kDrop,        // write nothing, report success (a lost datagram)
    kTruncate,    // write a prefix (truncate_to bytes), then kill the conn
    kDisconnect,  // kill the connection before writing
  };

  virtual ~FaultInjector() = default;

  // Decides the fate of the `frame_index`-th frame sent through this
  // injector (`frame_type` = the frame's 4-byte type field, `frame_bytes`
  // = header + payload size). For kTruncate, set *truncate_to to the
  // number of bytes to let through (clamped to frame_bytes - 1 so the
  // frame is always incomplete).
  virtual Action OnSendFrame(uint64_t frame_index, uint32_t frame_type,
                             size_t frame_bytes, size_t* truncate_to) = 0;
};

// A scripted injector: `plan[i]` is applied to the i-th frame (counted
// across every connection sharing the injector); unlisted frames pass.
class ScriptedFaultInjector : public FaultInjector {
 public:
  struct Fault {
    Action action = Action::kPass;
    size_t truncate_to = 8;  // kTruncate only: bytes let through
  };

  void Set(uint64_t frame_index, Action action, size_t truncate_to = 8) {
    plan_[frame_index] = {action, truncate_to};
  }

  Action OnSendFrame(uint64_t frame_index, uint32_t frame_type,
                     size_t frame_bytes, size_t* truncate_to) override;

  // Total frames offered to this injector so far.
  uint64_t frames_seen() const {
    return frames_seen_.load(std::memory_order_relaxed);
  }

 private:
  std::map<uint64_t, Fault> plan_;  // written before use, then read-only
  std::atomic<uint64_t> frames_seen_{0};
};

// A switchable injector for partition tests: while enabled, every frame is
// dropped — or, with a type filter, only frames of that type (heartbeat-only
// loss). Flipping the switch at runtime is the scripted "partition heals"
// event; counters say how much traffic the partition ate.
class ToggleFaultInjector : public FaultInjector {
 public:
  ToggleFaultInjector() = default;
  // Drops only frames whose type field equals `only_type` while enabled.
  explicit ToggleFaultInjector(uint32_t only_type)
      : filter_type_(only_type), has_filter_(true) {}

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_release);
  }
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  Action OnSendFrame(uint64_t frame_index, uint32_t frame_type,
                     size_t frame_bytes, size_t* truncate_to) override;

  uint64_t frames_seen() const {
    return frames_seen_.load(std::memory_order_relaxed);
  }
  uint64_t frames_dropped() const {
    return frames_dropped_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> frames_seen_{0};
  std::atomic<uint64_t> frames_dropped_{0};
  uint32_t filter_type_ = 0;
  bool has_filter_ = false;
};

// One established TCP stream. Close() is safe to call concurrently with a
// blocked ReadFrame on another thread (it shuts the socket down first, so
// the reader wakes with kUnavailable).
class TcpConnection {
 public:
  // Connects to `endpoint`, waiting at most `timeout_ms`.
  static Result<std::unique_ptr<TcpConnection>> Dial(
      const NetEndpoint& endpoint, int timeout_ms);

  ~TcpConnection();
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  // Writes one frame (subject to the fault injector, if any). The write
  // applies `write_timeout_ms` per syscall; a slow peer whose socket
  // buffer stays full surfaces as kUnavailable.
  Status SendFrame(uint32_t type, const std::string& payload);

  // Reads one complete frame, waiting at most `timeout_ms` per syscall.
  // kUnavailable: timeout or peer closed. kCorruption: bad magic, oversize
  // length, or checksum mismatch — close the connection, the stream is
  // unrecoverable.
  Result<NetFrame> ReadFrame(int timeout_ms);

  void Close();
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  void set_write_timeout_ms(int ms) { write_timeout_ms_ = ms; }

 private:
  explicit TcpConnection(int fd) : fd_(fd) {}
  friend class TcpListener;

  std::atomic<int> fd_;
  std::atomic<bool> closed_{false};
  FaultInjector* injector_ = nullptr;
  std::atomic<uint64_t> frames_sent_{0};
  int write_timeout_ms_ = 5000;
};

// A listening socket. Accept is blocking-with-timeout; Close() wakes a
// blocked Accept on another thread.
class TcpListener {
 public:
  // Binds and listens on `endpoint` (port 0 picks an ephemeral port).
  static Result<std::unique_ptr<TcpListener>> Bind(const NetEndpoint& endpoint);

  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  // Waits up to `timeout_ms` for a peer; kUnavailable on timeout or after
  // Close(). Accepted connections inherit the listener's fault injector.
  Result<std::unique_ptr<TcpConnection>> Accept(int timeout_ms);

  void Close();
  uint16_t port() const { return port_; }

  // Stamped onto every subsequently accepted connection (fault-testing the
  // replica->primary ack direction).
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

 private:
  TcpListener(int fd, uint16_t port) : fd_(fd), port_(port) {}

  std::atomic<int> fd_;
  std::atomic<bool> closed_{false};
  uint16_t port_ = 0;
  FaultInjector* injector_ = nullptr;
};

}  // namespace adept

#endif  // ADEPT_NET_TRANSPORT_H_
