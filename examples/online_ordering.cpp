// The paper's demo, end to end (Figs. 1 + 3): schema evolution of the
// online ordering process with on-the-fly instance migration.
//
//   V1: get order -> collect data -> (confirm order || compose order)
//       -> pack goods -> deliver goods
//   Delta-T: serialInsert("send questions" after "compose order")
//            + insertSyncEdge("send questions" -> "confirm order")
//
//   I1: mid-flight, compliant            -> migrated to V2 (state adapted)
//   I2: ad-hoc sync edge confirm->compose -> structural conflict (deadlock
//       cycle with Delta-T's sync edge), stays on V1
//   I3: already past the parallel block  -> state-related conflict, stays
//
// Build & run:  ./build/examples/online_ordering

#include <iostream>
#include <string>

#include "change/change_op.h"
#include "core/adept.h"
#include "model/schema_builder.h"
#include "monitor/monitor.h"

using namespace adept;

namespace {

std::shared_ptr<const ProcessSchema> ModelV1() {
  SchemaBuilder b("online_order", 1);
  b.Activity("get order");
  b.Activity("collect data");
  b.Parallel({
      [](SchemaBuilder& s) { s.Activity("confirm order"); },
      [](SchemaBuilder& s) { s.Activity("compose order"); },
  });
  b.Activity("pack goods");
  b.Activity("deliver goods");
  auto schema = b.Build();
  return schema.ok() ? *schema : nullptr;
}

Status Run(AdeptSystem& adept, InstanceId id, const char* name) {
  NodeId node;
  ADEPT_RETURN_IF_ERROR(adept.WithInstance(
      id, [&](const ProcessInstance& inst) {
        node = inst.schema().FindNodeByName(name);
      }));
  ADEPT_RETURN_IF_ERROR(adept.StartActivity(id, node));
  return adept.CompleteActivity(id, node);
}

}  // namespace

int main() {
  auto system = AdeptSystem::Create();
  AdeptSystem& adept = **system;
  auto v1 = ModelV1();
  SchemaId v1_id = *adept.DeployProcessType(v1);

  std::cout << "--- schema S (V1) ---\n" << RenderSchema(*v1) << "\n";

  // Instance I1: executes up to the parallel block.
  InstanceId i1 = *adept.CreateInstance("online_order");
  (void)Run(adept, i1, "get order");
  (void)Run(adept, i1, "collect data");

  // Instance I2: individually modified — the customer insists on a
  // confirmation before composition (sync edge confirm -> compose).
  InstanceId i2 = *adept.CreateInstance("online_order");
  {
    Delta bias;
    bias.Add(std::make_unique<InsertSyncEdgeOp>(
        v1->FindNodeByName("confirm order"),
        v1->FindNodeByName("compose order")));
    Status st = adept.ApplyAdHocChange(i2, std::move(bias));
    std::cout << "ad-hoc change on I2: " << st << "\n";
  }

  // Instance I3: races ahead past the insertion region.
  InstanceId i3 = *adept.CreateInstance("online_order");
  for (const char* step :
       {"get order", "collect data", "confirm order", "compose order"}) {
    (void)Run(adept, i3, step);
  }

  // Delta-T: insert "send questions" + sync edge to "confirm order".
  Delta type_change;
  {
    Delta probe;
    NewActivitySpec spec;
    spec.name = "send questions";
    auto* op = probe.Add(std::make_unique<SerialInsertOp>(
        spec, v1->FindNodeByName("compose order"),
        v1->FindNodeByName("and_join")));
    (void)probe.ApplyToSchema(*v1);  // pin the new node's id
    type_change.Add(op->Clone());
    type_change.Add(std::make_unique<InsertSyncEdgeOp>(
        static_cast<SerialInsertOp*>(op)->inserted_node(),
        v1->FindNodeByName("confirm order")));
  }
  std::cout << "\n--- type change Delta-T ---\n"
            << type_change.Describe() << "\n";

  SchemaId v2_id = *adept.EvolveProcessType(v1_id, std::move(type_change));
  std::cout << "\n--- schema S' (V2) ---\n"
            << RenderSchema(**adept.Schema(v2_id)) << "\n";

  // Commit: check compliance and migrate (Fig. 3's report).
  auto report = adept.Migrate(v1_id, v2_id);
  std::cout << RenderMigrationReport(*report) << "\n";

  // I1 now runs on V2 with adapted markings: confirm order is gated behind
  // the new "send questions" activity. The render is a query — exactly
  // the instances on V2 — instead of naming I1 by hand.
  auto migrated = RenderMatching(adept, "schema_version == 2");
  if (!migrated.ok()) {
    std::cerr << "query failed: " << migrated.status() << "\n";
    return 1;
  }
  std::cout << "--- instances on V2 after migration ---\n" << *migrated
            << "\n";

  // Fig. 3's population summary as two indexed queries over the published
  // snapshots (bare identifiers parse as string literals).
  for (int version : {1, 2}) {
    auto on_version = adept.Query(
        "type == online_order && schema_version == " +
        std::to_string(version) + " && state == running");
    if (!on_version.ok()) {
      std::cerr << "query failed: " << on_version.status() << "\n";
      return 1;
    }
    std::cout << "running on V" << version << ": " << on_version->size()
              << "\n";
  }

  // All three instances still finish (I2/I3 on V1). The version read is a
  // lock-free snapshot fetch — no WithInstance needed for derived state.
  SimulationDriver driver({.seed = 7});
  for (InstanceId id : {i1, i2, i3}) {
    Status st = adept.DriveToCompletion(id, driver);
    auto snapshot = adept.SnapshotOf(id);
    int version = snapshot == nullptr ? 0 : snapshot->schema->version();
    std::cout << "I" << id.value() << " finished: "
              << (st.ok() ? "yes" : st.ToString()) << " on V" << version
              << "\n";
  }

  if (auto i1_snapshot = adept.SnapshotOf(i1)) {
    std::cout << "\nGraphviz of I1's V2 schema (render with `dot -Tpng`):\n"
              << SchemaToDot(*i1_snapshot->schema, i1_snapshot.get());
  }
  return 0;
}
