// Container transportation with distributed process control.
//
// Bassil et al. built "a workflow-oriented system architecture for the
// management of container transportation" on ADEPT (paper ref. [3]). This
// example partitions the transport process across three (simulated)
// process servers — harbor, trucking company, terminal — runs instances
// with control handovers, evolves the process type (adding a customs
// inspection), and propagates the migration decision to every partition.
//
// Build & run:  ./build/examples/container_transport

#include <iostream>

#include "change/change_op.h"
#include "core/adept.h"
#include "dist/cluster.h"
#include "model/schema_builder.h"
#include "monitor/monitor.h"

using namespace adept;

int main() {
  auto system = AdeptSystem::Create();
  AdeptSystem& adept = **system;

  SimulatedCluster cluster;
  ServerId harbor = cluster.AddServer("harbor");
  ServerId trucking = cluster.AddServer("trucking");
  ServerId terminal = cluster.AddServer("terminal");

  // Transport process partitioned by responsibility.
  SchemaBuilder b("container_transport", 1);
  DataId damaged = b.Data("damaged", DataType::kInt);
  NodeId unload = b.Activity("unload vessel", {.server = harbor});
  b.Writes(unload, damaged);
  b.Conditional(damaged, {
      [&](SchemaBuilder& s) { /* intact: no extra step */ },
      [&](SchemaBuilder& s) {
        s.Activity("record damage", {.server = harbor});
      },
  });
  b.Parallel({
      [&](SchemaBuilder& s) {
        s.Activity("prepare transport docs", {.server = harbor});
      },
      [&](SchemaBuilder& s) {
        s.Activity("dispatch truck", {.server = trucking});
        s.Activity("drive to terminal", {.server = trucking});
      },
  });
  b.Activity("hand over container", {.server = trucking});
  b.Activity("stack container", {.server = terminal});
  b.Activity("confirm delivery", {.server = terminal});
  auto schema = b.Build();
  if (!schema.ok()) {
    std::cerr << "modeling failed: " << schema.status() << "\n";
    return 1;
  }
  SchemaId v1_id = *adept.DeployProcessType(*schema);

  std::cout << "--- container transport process ---\n"
            << RenderSchema(**schema);
  std::cout << "partitions:";
  for (ServerId s : cluster.PartitionsOf(**schema)) {
    std::cout << " " << *cluster.ServerName(s);
  }
  std::cout << "\n\n";

  // Run a fleet of containers through the distributed cluster.
  SimulationDriver driver({.seed = 2026});
  constexpr int kContainers = 25;
  std::vector<InstanceId> fleet;
  for (int i = 0; i < kContainers; ++i) {
    InstanceId id = *adept.CreateInstance("container_transport");
    fleet.push_back(id);
    Status st =
        cluster.RunDistributed(*adept.MutableInstance(id), driver);
    if (!st.ok()) {
      std::cerr << "distributed run failed: " << st << "\n";
      return 1;
    }
  }

  std::cout << "--- distributed execution of " << kContainers
            << " containers ---\n";
  for (ServerId s : {harbor, trucking, terminal}) {
    auto stats = cluster.StatsFor(s);
    std::cout << "  " << *cluster.ServerName(s) << ": "
              << stats->activities_executed << " activities, "
              << stats->handovers_in << " control handovers received\n";
  }
  std::cout << "  total messages: " << cluster.total_messages() << " ("
            << cluster.handover_count() << " handovers)\n\n";

  // A few containers still in flight on V1 (unloaded, nothing more).
  std::vector<InstanceId> in_flight;
  for (int i = 0; i < 5; ++i) {
    InstanceId id = *adept.CreateInstance("container_transport");
    NodeId node = (*schema)->FindNodeByName("unload vessel");
    (void)adept.StartActivity(id, node);
    (void)adept.CompleteActivity(id, node, {{damaged, DataValue::Int(0)}});
    in_flight.push_back(id);
  }

  // Schema evolution: customs now inspects every container before stacking.
  Delta customs;
  NewActivitySpec spec;
  spec.name = "customs inspection";
  customs.Add(std::make_unique<SerialInsertOp>(
      spec, (*schema)->FindNodeByName("hand over container"),
      (*schema)->FindNodeByName("stack container")));
  SchemaId v2_id = *adept.EvolveProcessType(v1_id, std::move(customs));

  auto report = adept.Migrate(v1_id, v2_id);
  std::cout << RenderMigrationReport(*report);

  // The migration decision is propagated to every partition server.
  (void)cluster.PropagateMigration(*report, **adept.Schema(v2_id));
  std::cout << "\npropagation messages sent: ";
  size_t propagation = 0;
  for (const auto& m : cluster.message_log()) {
    if (m.kind == DistMessageKind::kChangePropagation) ++propagation;
  }
  std::cout << propagation << "\n";

  // In-flight containers complete on V2 with the customs step.
  for (InstanceId id : in_flight) {
    (void)adept.DriveToCompletion(id, driver);
    (void)adept.WithInstance(id, [&](const ProcessInstance& inst) {
      NodeId customs_node =
          inst.schema().FindNodeByName("customs inspection");
      std::cout << "I" << id.value() << " finished on V"
                << inst.schema().version() << ", customs inspection: "
                << NodeStateToString(inst.node_state(customs_node)) << "\n";
    });
  }
  return 0;
}
