// Quickstart: model a process, deploy it, run an instance, watch worklists.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "core/adept.h"
#include "model/schema_builder.h"
#include "monitor/monitor.h"

using namespace adept;

int main() {
  // 1. A system (in-memory; pass wal_path/snapshot_path for durability).
  auto system = AdeptSystem::Create();
  if (!system.ok()) {
    std::cerr << system.status() << "\n";
    return 1;
  }
  AdeptSystem& adept = **system;

  // 2. Organization: who works here?
  RoleId clerk = *adept.org().AddRole("clerk");
  RoleId warehouse = *adept.org().AddRole("warehouse");
  UserId alice = *adept.org().AddUser("alice");
  UserId bob = *adept.org().AddUser("bob");
  (void)adept.org().AssignRole(alice, clerk);
  (void)adept.org().AssignRole(bob, warehouse);

  // 3. Model the paper's online ordering process (Fig. 1, schema S).
  SchemaBuilder builder("online_order", 1);
  builder.Activity("get order", {.role = clerk});
  builder.Activity("collect data", {.role = clerk});
  builder.Parallel({
      [&](SchemaBuilder& b) { b.Activity("confirm order", {.role = clerk}); },
      [&](SchemaBuilder& b) {
        b.Activity("compose order", {.role = warehouse});
      },
  });
  builder.Activity("pack goods", {.role = warehouse});
  builder.Activity("deliver goods", {.role = warehouse});
  auto schema = builder.Build();
  if (!schema.ok()) {
    std::cerr << "modeling failed: " << schema.status() << "\n";
    return 1;
  }

  // 4. Deploy (runs buildtime verification) and print the block structure.
  auto v1 = adept.DeployProcessType(*schema);
  if (!v1.ok()) {
    std::cerr << "deploy failed: " << v1.status() << "\n";
    return 1;
  }
  std::cout << RenderSchema(**schema) << "\n";

  // 5. Create and run one instance, pulling work from worklists. Reads go
  // through the published snapshot (ReadInstance/SnapshotOf) — lock-free
  // and race-free on any AdeptApi implementation; monitoring never blocks
  // the engine.
  InstanceId instance = *adept.CreateInstance("online_order");
  auto finished = [&] {
    auto snapshot = adept.SnapshotOf(instance);
    return snapshot != nullptr && snapshot->finished;
  };
  int step = 0;
  while (!finished()) {
    bool worked = false;
    for (UserId user : {alice, bob}) {
      auto offers = adept.worklists().OffersFor(user);
      if (offers.empty()) continue;
      const WorkItem& item = offers.front();
      (void)adept.worklists().Claim(item.id, user);
      (void)adept.StartActivity(instance, item.node);
      Status done = adept.CompleteActivity(instance, item.node);
      std::string name = "?";
      (void)adept.ReadInstance(instance, [&](const InstanceSnapshot& s) {
        const Node* node = s.schema->FindNode(item.node);
        if (node != nullptr) name = node->name;
      });
      std::printf("step %d: %-8s completes '%s' (%s)\n", ++step,
                  adept.org().UserName(user)->c_str(), name.c_str(),
                  done.ok() ? "ok" : done.ToString().c_str());
      worked = true;
    }
    if (!worked) break;
  }

  (void)adept.ReadInstance(instance, [&](const InstanceSnapshot& s) {
    std::cout << "\n" << RenderInstance(s);
    std::cout << "\ninstance finished: " << (s.finished ? "yes" : "no")
              << "\n";
  });
  return 0;
}
