// E-health scenario: a medical treatment process with a treatment loop and
// severity triage, deviated ad hoc for one patient.
//
// ADEPT2 was deployed to research groups "as platform for realizing
// advanced PAIS in domains like e-health" (paper Sec. 3). The classic
// motivating case: for one patient an additional lab test must be inserted
// *now*, without stopping the running case and without compromising the
// guarantees checked at buildtime. A second attempted deviation (deleting
// an activity whose results are already used) is correctly rejected.
//
// Build & run:  ./build/examples/ehealth

#include <iostream>
#include <string>

#include "change/change_op.h"
#include "core/adept.h"
#include "model/schema_builder.h"
#include "monitor/monitor.h"

using namespace adept;

int main() {
  auto system = AdeptSystem::Create();
  AdeptSystem& adept = **system;

  RoleId physician = *adept.org().AddRole("physician");
  RoleId nurse = *adept.org().AddRole("nurse");
  UserId dr_weber = *adept.org().AddUser("dr. weber");
  UserId nurse_kim = *adept.org().AddUser("nurse kim");
  (void)adept.org().AssignRole(dr_weber, physician);
  (void)adept.org().AssignRole(nurse_kim, nurse);

  // Treatment process: admit -> triage -> XOR(ward | icu) -> LOOP(treat,
  // evaluate) -> discharge. The loop repeats while "continue_treatment".
  SchemaBuilder b("treatment", 1);
  DataId severity = b.Data("severity", DataType::kInt);
  DataId continue_treatment = b.Data("continue_treatment", DataType::kBool);
  DataId vitals = b.Data("vitals", DataType::kString);

  NodeId admit = b.Activity("admit patient", {.role = nurse});
  b.Writes(admit, vitals);
  NodeId triage = b.Activity("triage", {.role = physician});
  b.Reads(triage, vitals);
  b.Writes(triage, severity);
  b.Conditional(severity, {
      [&](SchemaBuilder& s) { s.Activity("assign ward bed", {.role = nurse}); },
      [&](SchemaBuilder& s) {
        s.Activity("admit to ICU", {.role = physician});
      },
  });
  b.Loop(continue_treatment, [&](SchemaBuilder& s) {
    NodeId treat = s.Activity("administer treatment", {.role = nurse});
    s.Reads(treat, vitals);
    NodeId evaluate = s.Activity("evaluate response", {.role = physician});
    s.Writes(evaluate, continue_treatment);
    s.Writes(evaluate, vitals);
  });
  NodeId discharge = b.Activity("discharge", {.role = physician});
  b.Reads(discharge, vitals);

  auto schema = b.Build();
  if (!schema.ok()) {
    std::cerr << "modeling failed: " << schema.status() << "\n";
    return 1;
  }
  (void)adept.DeployProcessType(*schema);
  std::cout << "--- treatment process ---\n" << RenderSchema(**schema) << "\n";

  // Patient case starts; the nurse admits, the physician triages (severe).
  InstanceId patient = *adept.CreateInstance("treatment");
  NodeId admit_node = (*schema)->FindNodeByName("admit patient");
  (void)adept.StartActivity(patient, admit_node);
  (void)adept.CompleteActivity(
      patient, admit_node,
      {{vitals, DataValue::String("bp 150/95, temp 39.1")}});
  NodeId triage_node = (*schema)->FindNodeByName("triage");
  (void)adept.StartActivity(patient, triage_node);
  (void)adept.CompleteActivity(patient, triage_node,
                               {{severity, DataValue::Int(1)}});  // ICU

  (void)adept.WithInstance(patient, [](const ProcessInstance& i) {
    std::cout << "after triage (ICU branch selected, ward branch skipped):\n"
              << RenderInstance(i) << "\n";
  });

  // The unified read API: a textual query replaces a hand-written sweep.
  // This ward's dashboard question — "which severe cases are running?" —
  // is one indexed, lock-free Query() against published snapshots.
  auto severe = adept.Query("data.severity == 1 && state == running");
  if (!severe.ok()) {
    std::cerr << "query failed: " << severe.status() << "\n";
    return 1;
  }
  std::cout << "severe running cases (data.severity == 1): "
            << severe->size() << "\n\n";

  // Ad-hoc deviation: this patient needs an extra lab test before ICU
  // admission. The paper: "to deal with an exceptional situation".
  {
    Delta delta;
    NewActivitySpec spec;
    spec.name = "extra lab test";
    spec.role = physician;
    delta.Add(std::make_unique<SerialInsertOp>(
        spec, (*schema)->FindNodeByName("xor_split"),
        (*schema)->FindNodeByName("admit to ICU")));
    Status st = adept.ApplyAdHocChange(patient, std::move(delta));
    std::cout << "insert 'extra lab test' ad hoc: " << st << "\n";
  }

  // A second deviation is *rejected*: deleting "admit patient" would strip
  // the writer of data the triage already consumed — and it already ran.
  {
    Delta delta;
    delta.Add(std::make_unique<DeleteActivityOp>(admit_node));
    Status st = adept.ApplyAdHocChange(patient, std::move(delta));
    std::cout << "delete 'admit patient' ad hoc: " << st
              << "  <- correctly rejected\n\n";
  }

  // Work through the worklists until discharge. The completion poll is a
  // point query on the published snapshot — no engine lock, no sweep.
  const std::string done_query =
      "id == " + std::to_string(patient.value()) + " && state == finished";
  auto patient_finished = [&] {
    auto result = adept.Query(done_query);
    return result.ok() && !result->empty();
  };
  int guard = 0;
  while (!patient_finished() && ++guard < 100) {
    bool worked = false;
    for (UserId user : {dr_weber, nurse_kim}) {
      for (const WorkItem& item : adept.worklists().OffersFor(user)) {
        (void)adept.worklists().Claim(item.id, user);
        (void)adept.StartActivity(patient, item.node);
        std::vector<ProcessInstance::DataWrite> writes;
        (void)adept.WithInstance(patient, [&](const ProcessInstance& inst) {
          inst.schema().VisitDataEdges(item.node, [&](const DataEdge& de) {
            if (de.mode != AccessMode::kWrite) return;
            if (de.data == continue_treatment) {
              // Two treatment cycles, then stop.
              writes.push_back(
                  {de.data, DataValue::Bool(inst.loop_iteration(
                                inst.schema().FindNodeByName("loop_start")) <
                            1)});
            } else {
              writes.push_back({de.data, DataValue::String("stable")});
            }
          });
        });
        (void)adept.CompleteActivity(patient, item.node, writes);
        worked = true;
      }
    }
    if (!worked) break;
  }

  // Final render goes through the same query surface (RenderMatching is
  // Query + RenderInstance per hit); only the execution-trace statistics
  // still need the live instance under WithInstance.
  auto rendered = RenderMatching(adept, "state == finished");
  if (!rendered.ok()) {
    std::cerr << "render query failed: " << rendered.status() << "\n";
    return 1;
  }
  std::cout << "--- final state ---\n" << *rendered;
  (void)adept.WithInstance(patient, [](const ProcessInstance& i) {
    NodeId loop_start = i.schema().FindNodeByName("loop_start");
    std::cout << "treatment cycles: " << i.loop_iteration(loop_start) + 1
              << "\n";
    std::cout << "trace length: " << i.trace().events().size()
              << " events (reduced: " << i.trace().Reduced().size() << ")\n";
  });
  return 0;
}
